"""Event-driven execution path: real messages on the discrete-event engine.

The session layer turns every :class:`~repro.runtime.rounds.Request` into
scheduled message deliveries on a :class:`~repro.cluster.events.Simulator`:

* **send** — the request leg is scheduled at ``now + sampled latency``;
  a per-attempt timeout timer is armed at ``now + policy.timeout``;
* **deliver** — at delivery time the destination is re-checked: a
  *partitioned* node silently drops the message (only the timeout will
  resolve it), a *failed* node refuses delivery (an error reply travels
  back — fast failure, like a connection reset), a healthy node executes
  the RPC and its reply (value or caught application error, e.g. a
  version-guard rejection) travels back after another sampled leg;
* **reply** — the reply leg is itself dropped if the partition cuts the
  node off while it is in flight; otherwise it resolves the attempt,
  cancels the timeout and feeds the round's
  :class:`~repro.runtime.rounds.QuorumWait`;
* **timeout/retry** — a silent attempt is resent up to
  ``policy.retries`` times, then resolves as failed.

Because node state is only touched at delivery time, failures, repairs
and partitions scheduled on the same simulator genuinely interleave
*mid-operation* — the regime the latency/faultload scenarios measure.

Delivery is at-least-once under retries: a late original delivery after a
resend can execute twice. The node-side version guards (monotonic
``write_data``, the Algorithm-1 line-26 delta guard) turn duplicates into
``StaleNodeError`` rejections instead of double-applies.

Determinism: every latency sample comes from the coordinator's own RNG
stream and every tie in the event queue breaks by insertion order, so one
seed reproduces the exact event sequence; ``trace_hash()`` digests the
recorded message trace to assert that end to end.

Node service queues
-------------------

By default a delivered request executes instantly (zero service time) —
the node is an infinite server and concurrent coordinators never contend.
Attaching a :class:`NodeServiceQueue` per node (the ``queues`` mapping of
:class:`EventCoordinator`) turns each node into a single FIFO server:
a delivered request joins the node's backlog, waits for the requests
ahead of it, occupies the server for a sampled
:class:`~repro.cluster.node.ServiceTimeModel` service time, and only then
executes (against the node's *then-current* state) and sends its reply.
Because the queue object is shared by every coordinator targeting the
node, many shards genuinely contend and the runtime becomes a closed
queueing network — queue waits, not just wire latency, shape the
operation percentiles, and throughput saturates at the service capacity.
Timeouts keep running while a request is queued, so an overloaded node
produces genuine client-visible failures. Without queues the delivery
path is byte-for-byte the pre-queue behaviour (same RNG draws, same
event insertion order, same trace).
"""

from __future__ import annotations

import hashlib
from collections import Counter, deque
from typing import Any, Callable, Mapping

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator, Timer
from repro.cluster.network import _payload_bytes
from repro.cluster.node import QueueStats, ServiceTimeModel
from repro.cluster.rng import make_rng, spawn_rngs
from repro.errors import NodeUnavailableError, SimulationError
from repro.runtime.coordinator import OpHandle, Plan
from repro.runtime.drain import DrainSet
from repro.runtime.rounds import (
    QuorumWait,
    Request,
    Response,
    RetryPolicy,
    Round,
    RoundOutcome,
)

__all__ = ["EventCoordinator", "NodeServiceQueue", "make_service_queues"]


class NodeServiceQueue:
    """One node's FIFO service station on the discrete-event engine.

    Jobs (zero-argument callables — the coordinator's execute-and-reply
    continuations) are served one at a time in arrival order; each
    occupies the server for ``model.sample(rng)`` virtual seconds before
    it runs. The queue is owned by the shared substrate, not by any one
    coordinator, so every shard delivering to the node joins the same
    backlog. ``stats`` accumulates waits/service/backlog for the
    queueing-theory checks and the saturation reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        node_id: int,
        model: ServiceTimeModel,
        rng=None,
    ) -> None:
        self.sim = simulator
        self.node_id = int(node_id)
        self.model = model
        self.rng = make_rng(rng)
        self.busy = False
        self.stats = QueueStats()
        self._pending: deque[tuple[float, Callable[[], None]]] = deque()

    def __len__(self) -> int:
        """Backlog including the job in service."""
        return len(self._pending) + (1 if self.busy else 0)

    def push(self, job: Callable[[], None]) -> None:
        """Enqueue one delivered request; serve immediately if idle."""
        self.stats.arrivals += 1
        self._pending.append((self.sim.now, job))
        self.stats.max_queue_len = max(self.stats.max_queue_len, len(self))
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        arrived, job = self._pending.popleft()
        self.busy = True
        self.stats.started += 1
        self.stats.total_wait += self.sim.now - arrived
        service = float(self.model.sample(self.rng))
        self.stats.total_service += service
        self.sim.schedule_in(service, lambda: self._finish(job))

    def _finish(self, job: Callable[[], None]) -> None:
        self.stats.served += 1
        job()
        self.busy = False
        if self._pending:
            self._start_next()


def make_service_queues(
    simulator: Simulator,
    num_nodes: int,
    model: ServiceTimeModel,
    rng=None,
) -> dict[int, NodeServiceQueue]:
    """One shared :class:`NodeServiceQueue` per node id.

    Each queue samples service times from its own child stream of
    ``rng``, so the schedule is independent of which coordinators happen
    to deliver to the node (per-node streams, the standard HPC practice).
    """
    rngs = spawn_rngs(make_rng(rng), num_nodes)
    return {
        i: NodeServiceQueue(simulator, i, model, rngs[i])
        for i in range(num_nodes)
    }


class _Attempt:
    """One in-flight request attempt (send leg + reply leg + timeout)."""

    __slots__ = ("request", "number", "resolved", "timer")

    def __init__(self, request: Request, number: int) -> None:
        self.request = request
        self.number = number
        self.resolved = False
        self.timer: Timer | None = None


class _RoundState:
    """Bookkeeping of one in-flight round."""

    __slots__ = ("round", "wait", "started_at", "messages", "on_complete")

    def __init__(self, round_: Round, started_at: float, on_complete) -> None:
        self.round = round_
        self.wait = QuorumWait(round_)
        self.started_at = started_at
        self.messages = 0
        self.on_complete = on_complete


class EventCoordinator:
    """Run protocol plans as concurrent message sessions on a simulator.

    Parameters
    ----------
    cluster:
        The storage cluster (shared with any instant-path engines, e.g.
        an out-of-band anti-entropy service).
    simulator:
        The discrete-event loop; failure/repair/partition schedules on
        the same simulator interleave with in-flight operations.
    latency:
        Per-message-leg latency model. Defaults to the cluster network's
        model, falling back to :class:`~repro.cluster.network.FixedLatency`.
    rng:
        Seed or Generator for latency sampling (determinism boundary).
    policy:
        Timeout/retry policy applied to every request.
    record_trace:
        Keep the full message trace for ``trace_hash()`` (deterministic
        replay checks).
    queues:
        Optional node-id -> :class:`NodeServiceQueue` mapping. Deliveries
        to a queued node wait their FIFO turn and a sampled service time
        before executing; nodes absent from the mapping (or the default
        ``None``) serve instantly, byte-identically to the queue-free
        path. Share one mapping across every coordinator on the substrate
        so shards contend for the same servers.
    site:
        Where this coordinator sits for per-link latency models
        (``LatencyModel.sample_link``): a node id whose rack the
        coordinator shares, or ``None`` for an off-cluster client.
        Distribution-only models ignore it.
    """

    mode = "event"

    def __init__(
        self,
        cluster: Cluster,
        simulator: Simulator,
        *,
        latency=None,
        rng=None,
        policy: RetryPolicy | None = None,
        record_trace: bool = False,
        queues: Mapping[int, NodeServiceQueue] | None = None,
        site: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.sim = simulator
        if latency is None:
            latency = cluster.network.latency
        if latency is None:
            from repro.cluster.network import FixedLatency

            latency = FixedLatency()
        self.latency = latency
        self.rng = make_rng(rng)
        self.policy = policy if policy is not None else RetryPolicy()
        self.queues = queues
        self.site = site
        self.in_flight = 0
        self.max_in_flight = 0
        self.ops_completed = 0
        self.rounds_run = 0
        self.round_messages: Counter = Counter()
        #: in-flight attempts with live timeout timers (shared drain
        #: discipline with the async backend — see runtime/drain.py)
        self.outstanding = DrainSet()
        self._trace: list[str] | None = [] if record_trace else None
        self._draining = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def submit(self, plan: Plan, on_done: Callable[[Any], None] | None = None) -> OpHandle:
        """Start a plan; it completes asynchronously as the sim advances."""
        handle = OpHandle(started_at=self.sim.now)
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        self._advance(plan, handle, on_done, None)
        return handle

    def execute(self, plan: Plan) -> Any:
        """Submit one plan and pump the simulator until it completes.

        Single-operation convenience (tests, path-equivalence checks).
        Must not be called from inside a simulator callback — concurrent
        clients submit() instead.
        """
        if self._draining:
            raise SimulationError(
                "re-entrant EventCoordinator.execute(); use submit() from "
                "simulator callbacks"
            )
        handle = self.submit(plan)
        self._draining = True
        try:
            while not handle.done:
                if not self.sim.step():
                    raise SimulationError(
                        "event queue drained before the operation completed"
                    )
        finally:
            self._draining = False
        return handle.result

    def trace_hash(self) -> str:
        """SHA-256 over the recorded message trace (determinism check)."""
        if self._trace is None:
            raise SimulationError("trace recording is off (record_trace=False)")
        digest = hashlib.sha256()
        for line in self._trace:
            digest.update(line.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    @property
    def trace_length(self) -> int:
        return len(self._trace) if self._trace is not None else 0

    def shutdown(self) -> int:
        """Cancel every outstanding attempt's timeout timer.

        Call when a coordinator is discarded mid-simulation (a finished
        sweep point, an aborted run): pending attempts are marked
        resolved and their armed :class:`~repro.cluster.events.Timer`
        handles cancelled, so the shared simulator's heap stops
        retaining dead sessions. Returns how many attempts were live.
        The coordinator stays usable — shutdown drains, it does not
        poison.
        """
        return self.outstanding.cancel_all()

    # ------------------------------------------------------------------ #
    # plan driving
    # ------------------------------------------------------------------ #

    def _advance(self, plan: Plan, handle: OpHandle, on_done, outcome) -> None:
        try:
            round_ = plan.send(outcome)
        except StopIteration as stop:
            handle.result = stop.value
            handle.finished_at = self.sim.now
            handle.done = True
            self.in_flight -= 1
            self.ops_completed += 1
            if hasattr(handle.result, "latency"):
                handle.result.latency = handle.finished_at - handle.started_at
            if on_done is not None:
                on_done(handle.result)
            return
        self._start_round(
            round_,
            lambda outcome: self._advance(plan, handle, on_done, outcome),
        )

    def _start_round(self, round_: Round, on_complete) -> None:
        state = _RoundState(round_, self.sim.now, on_complete)
        self.rounds_run += 1
        if not round_.requests:
            self._complete(state)
            return
        for request in round_.requests:
            self._send(state, _Attempt(request, 0))

    def _complete(self, state: _RoundState) -> None:
        wait = state.wait
        wait.done = True  # idempotent for the empty-round case
        outcome = RoundOutcome(
            round=state.round,
            responses=list(wait.responses),
            accepted=list(wait.accepted),
            satisfied=wait.satisfied or (state.round.need is None and not state.round.requests),
            elapsed=self.sim.now - state.started_at,
            messages=state.messages,
        )
        self.cluster.network.record_round(outcome.elapsed)
        state.on_complete(outcome)

    # ------------------------------------------------------------------ #
    # message session layer
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, request: Request, attempt: int) -> None:
        if self._trace is not None:
            self._trace.append(
                f"{self.sim.now!r} {kind} node={request.node_id} "
                f"method={request.method} attempt={attempt}"
            )

    def _count_message(self, state: _RoundState) -> None:
        self.cluster.network.stats.messages += 1
        self.round_messages[state.round.kind] += 1
        if not state.wait.done:
            state.messages += 1

    def _send(self, state: _RoundState, attempt: _Attempt) -> None:
        net = self.cluster.network
        request = attempt.request
        self._record("send", request, attempt.number)
        self._count_message(state)
        net.stats.by_kind[request.method] += 1
        net.stats.bytes_sent += _payload_bytes(request.args, request.kwargs)
        attempt.timer = self.sim.schedule_in(
            self.policy.timeout, lambda: self._timeout(state, attempt)
        )
        self.outstanding.add(attempt, lambda: self._discard_attempt(attempt))
        if net.is_partitioned(request.node_id):
            # Silent drop: only the timeout resolves this attempt.
            net.stats.messages_dropped += 1
            self._record("drop", request, attempt.number)
            return
        delay = self.latency.sample_link(self.rng, self.site, request.node_id)
        net.stats.total_message_delay += delay
        self.sim.schedule_in(delay, lambda: self._deliver(state, attempt))

    def _deliver(self, state: _RoundState, attempt: _Attempt) -> None:
        if attempt.resolved:
            return  # timed out (and possibly resent) before arriving
        net = self.cluster.network
        request = attempt.request
        if net.is_partitioned(request.node_id):
            # Partition raced the message: dropped on the wire.
            net.stats.messages_dropped += 1
            self._record("drop", request, attempt.number)
            return
        self._record("deliver", request, attempt.number)
        queue = None if self.queues is None else self.queues.get(request.node_id)
        if queue is None:
            self._serve(state, attempt)
        else:
            # The request joins the node's FIFO backlog; _serve runs once
            # the server reaches it (queue wait + sampled service time).
            # A node failing — or the attempt timing out — while queued is
            # handled at service time, against the then-current state.
            queue.push(lambda: self._serve(state, attempt))

    def _serve(self, state: _RoundState, attempt: _Attempt) -> None:
        net = self.cluster.network
        request = attempt.request
        node = self.cluster.node(request.node_id)
        if not node.alive:
            # Fail-stop refusal: an error reply travels back immediately
            # (connection reset), distinct from the silent partition drop.
            node.stats.failed_rpcs += 1
            net.stats.rpc_failures += 1
            response = Response(
                request=request, ok=False, error=NodeUnavailableError(request.node_id)
            )
        else:
            try:
                value = getattr(node, request.method)(*request.args, **request.kwargs)
                # Delivery-time corruption: a Byzantine node lies as it
                # serves the request, so messages that were queued or
                # in-flight when the node turned are affected too.
                if node.byzantine is not None:
                    value = node.byzantine.apply(
                        node, request.method, value, request.args
                    )
                response = Response(request=request, ok=True, value=value)
            except request.catches as exc:
                net.stats.rpc_failures += 1
                response = Response(request=request, ok=False, error=exc)
        delay = self.latency.sample_link(self.rng, request.node_id, self.site)
        net.stats.total_message_delay += delay
        self.sim.schedule_in(delay, lambda: self._reply(state, attempt, response))

    def _reply(self, state: _RoundState, attempt: _Attempt, response: Response) -> None:
        if attempt.resolved:
            return
        net = self.cluster.network
        request = attempt.request
        if net.is_partitioned(request.node_id):
            # The reply leg is cut too: the coordinator hears nothing.
            net.stats.messages_dropped += 1
            self._record("drop-reply", request, attempt.number)
            return
        self._record("reply", request, attempt.number)
        self._count_message(state)
        self._resolve(state, attempt, response)

    def _discard_attempt(self, attempt: _Attempt) -> None:
        """Drain-path cancel: kill the timer, deaden the attempt."""
        attempt.resolved = True
        if attempt.timer is not None:
            attempt.timer.cancel()

    def _timeout(self, state: _RoundState, attempt: _Attempt) -> None:
        if attempt.resolved:
            return
        attempt.resolved = True  # the original attempt is dead to the op
        self.outstanding.discard(attempt)
        if state.wait.done:
            # The round completed without this attempt: drop it quietly.
            # Straggler *responses* keep flowing (they are real traffic),
            # but nothing retransmits on behalf of a finished operation.
            return
        net = self.cluster.network
        net.stats.timeouts += 1
        self._record("timeout", attempt.request, attempt.number)
        if attempt.number < self.policy.retries:
            net.stats.retries += 1
            self._send(state, _Attempt(attempt.request, attempt.number + 1))
            return
        response = Response(
            request=attempt.request,
            ok=False,
            error=NodeUnavailableError(attempt.request.node_id),
        )
        self._resolve(state, attempt, response, cancel_timer=False)

    def _resolve(
        self,
        state: _RoundState,
        attempt: _Attempt,
        response: Response,
        cancel_timer: bool = True,
    ) -> None:
        attempt.resolved = True
        self.outstanding.discard(attempt)
        if cancel_timer and attempt.timer is not None:
            attempt.timer.cancel()
        if state.wait.done:
            return  # straggler: traffic only, the round already completed
        if state.wait.offer(response):
            self._complete(state)
