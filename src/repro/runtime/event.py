"""Event-driven execution path: real messages on the discrete-event engine.

The session layer turns every :class:`~repro.runtime.rounds.Request` into
scheduled message deliveries on a :class:`~repro.cluster.events.Simulator`:

* **send** — the request leg is scheduled at ``now + sampled latency``;
  a per-attempt timeout timer is armed at ``now + policy.timeout``;
* **deliver** — at delivery time the destination is re-checked: a
  *partitioned* node silently drops the message (only the timeout will
  resolve it), a *failed* node refuses delivery (an error reply travels
  back — fast failure, like a connection reset), a healthy node executes
  the RPC and its reply (value or caught application error, e.g. a
  version-guard rejection) travels back after another sampled leg;
* **reply** — the reply leg is itself dropped if the partition cuts the
  node off while it is in flight; otherwise it resolves the attempt,
  cancels the timeout and feeds the round's quorum wait;
* **timeout/retry** — a silent attempt is resent up to
  ``policy.retries`` times, then resolves as failed.

Because node state is only touched at delivery time, failures, repairs
and partitions scheduled on the same simulator genuinely interleave
*mid-operation* — the regime the latency/faultload scenarios measure.

Delivery is at-least-once under retries: a late original delivery after a
resend can execute twice. The node-side version guards (monotonic
``write_data``, the Algorithm-1 line-26 delta guard) turn duplicates into
``StaleNodeError`` rejections instead of double-applies.

Determinism: every latency sample comes from the coordinator's own RNG
stream and every tie in the event queue breaks by insertion order, so one
seed reproduces the exact event sequence; ``trace_hash()`` digests the
recorded message trace to assert that end to end.

The vectorized event core
-------------------------

This implementation is the struct-of-arrays rewrite of the original
per-object session layer (kept verbatim as
:class:`~repro.runtime.reference.ReferenceEventCoordinator`, the lockstep
oracle and bench baseline — the ``event_core`` perf section measures one
against the other). The observable behaviour — trace bytes, RNG stream,
statistics, results — is bit-identical; only the bookkeeping shape
changed:

* **session slots** — per-round quorum bookkeeping lives in numpy arrays
  indexed by a pooled session slot (:class:`_SessionTable`): replies
  needed/seen/accepted, per-round message and outstanding-attempt
  counts. Slots recycle through a free-list instead of allocating a
  ``QuorumWait`` + round-state object pair per round. (For the trapezoid
  protocol a round *is* one level, so the accepted counter doubles as
  the per-level occupancy threshold check.)
* **waves, not attempts** — one :class:`_Wave` covers every attempt of a
  fan-out that was sent at the same instant, with one pooled flags list
  and *one* timeout timer on a :class:`~repro.cluster.events.MonotoneLane`
  (constant timeout delay ⇒ non-decreasing deadlines ⇒ O(1) deque
  push/cancel instead of heap traffic). Wave objects recycle through a
  free-list once no scheduled event references them.
* **batched legs** — all request legs of a wave draw their latencies in
  one sized RNG call (``LatencyModel.sample_links``, bit-identical to
  sequential scalar draws), and deliveries/replies sharing a timestamp
  are scheduled as one batch event (``Simulator.schedule_batch``) and
  handed to the coordinator in a single call. Same-timestamp deliveries
  to one queued node enter its :class:`NodeServiceQueue` through one
  ``push_many`` call. The engine only groups *globally consecutive*
  events, so foreign events (failures, other coordinators) interleave
  exactly as they would in the per-event loop.
* **lazy traces** — the trace records ``(now, kind, node, method,
  attempt)`` tuples and formats them only inside ``trace_hash()``;
  ``Request``/``Response`` carry ``__slots__``. Response objects escape
  into plan-visible ``RoundOutcome``s, so they are slot-compressed but
  deliberately *not* pooled (recycling them would alias state the
  protocol engines still hold).

Known measure-zero edge vs the reference path: a sampled one-way delay
*exactly* equal to ``policy.timeout`` can order differently against
other attempts' timeouts in the same round (single wave timer vs
interleaved per-attempt timers). No continuous latency model hits it.

Node service queues
-------------------

By default a delivered request executes instantly (zero service time) —
the node is an infinite server and concurrent coordinators never contend.
Attaching a :class:`NodeServiceQueue` per node (the ``queues`` mapping of
:class:`EventCoordinator`) turns each node into a single FIFO server:
a delivered request joins the node's backlog, waits for the requests
ahead of it, occupies the server for a sampled
:class:`~repro.cluster.node.ServiceTimeModel` service time, and only then
executes (against the node's *then-current* state) and sends its reply.
Because the queue object is shared by every coordinator targeting the
node, many shards genuinely contend and the runtime becomes a closed
queueing network — queue waits, not just wire latency, shape the
operation percentiles, and throughput saturates at the service capacity.
Timeouts keep running while a request is queued, so an overloaded node
produces genuine client-visible failures. Without queues the delivery
path is byte-for-byte the pre-queue behaviour (same RNG draws, same
event insertion order, same trace).
"""

from __future__ import annotations

import hashlib
from collections import Counter, deque
from typing import Any, Callable, Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator, Timer
from repro.cluster.network import _payload_bytes
from repro.cluster.node import QueueStats, ServiceTimeModel
from repro.cluster.rng import make_rng, spawn_rngs
from repro.errors import NodeUnavailableError, SimulationError
from repro.runtime.coordinator import OpHandle, Plan
from repro.runtime.rounds import (
    Request,
    Response,
    RetryPolicy,
    Round,
    RoundOutcome,
    _default_accept,
)

__all__ = ["EventCoordinator", "NodeServiceQueue", "make_service_queues"]


class NodeServiceQueue:
    """One node's FIFO service station on the discrete-event engine.

    Jobs (zero-argument callables — the coordinator's execute-and-reply
    continuations) are served one at a time in arrival order; each
    occupies the server for ``model.sample(rng)`` virtual seconds before
    it runs. The queue is owned by the shared substrate, not by any one
    coordinator, so every shard delivering to the node joins the same
    backlog. ``stats`` accumulates waits/service/backlog for the
    queueing-theory checks and the saturation reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        node_id: int,
        model: ServiceTimeModel,
        rng=None,
    ) -> None:
        self.sim = simulator
        self.node_id = int(node_id)
        self.model = model
        self.rng = make_rng(rng)
        self.busy = False
        self.stats = QueueStats()
        self._pending: deque[tuple[float, Callable[[], None]]] = deque()

    def __len__(self) -> int:
        """Backlog including the job in service."""
        return len(self._pending) + (1 if self.busy else 0)

    def push(self, job: Callable[[], None]) -> None:
        """Enqueue one delivered request; serve immediately if idle."""
        self.stats.arrivals += 1
        self._pending.append((self.sim.now, job))
        self.stats.max_queue_len = max(self.stats.max_queue_len, len(self))
        if not self.busy:
            self._start_next()

    def push_many(self, jobs) -> None:
        """Enqueue a batch of same-timestamp deliveries in one call.

        Stat-identical to ``push`` per job: arrivals count each job, the
        backlog high-water mark is taken after the whole batch lands
        (identical, since the backlog only grows within the batch), and
        service starts — drawing the same RNG sequence — iff the server
        was idle.
        """
        now = self.sim.now
        pending = self._pending
        self.stats.arrivals += len(jobs)
        for job in jobs:
            pending.append((now, job))
        self.stats.max_queue_len = max(self.stats.max_queue_len, len(self))
        if not self.busy and pending:
            self._start_next()

    def _start_next(self) -> None:
        arrived, job = self._pending.popleft()
        self.busy = True
        self.stats.started += 1
        self.stats.total_wait += self.sim.now - arrived
        service = float(self.model.sample(self.rng))
        self.stats.total_service += service
        self.sim.schedule_in(service, lambda: self._finish(job))

    def _finish(self, job: Callable[[], None]) -> None:
        self.stats.served += 1
        job()
        self.busy = False
        if self._pending:
            self._start_next()


def make_service_queues(
    simulator: Simulator,
    num_nodes: int,
    model: ServiceTimeModel,
    rng=None,
) -> dict[int, NodeServiceQueue]:
    """One shared :class:`NodeServiceQueue` per node id.

    Each queue samples service times from its own child stream of
    ``rng``, so the schedule is independent of which coordinators happen
    to deliver to the node (per-node streams, the standard HPC practice).
    """
    rngs = spawn_rngs(make_rng(rng), num_nodes)
    return {
        i: NodeServiceQueue(simulator, i, model, rngs[i])
        for i in range(num_nodes)
    }


class _SessionTable:
    """Struct-of-arrays bookkeeping for in-flight rounds.

    One *slot* per in-flight round, recycled through ``free``. The numpy
    int arrays hold the quorum counters the per-object path kept in
    ``QuorumWait`` instances: replies needed (−1 encodes the gather-all
    ``need=None``), requests total, replies resolved/accepted (the
    per-level occupancy for trapezoid thresholds), messages attributed to
    the round, and unresolved attempts (the slot cannot recycle while a
    straggler attempt still points at it).
    """

    __slots__ = (
        "capacity",
        "need",
        "total",
        "resolved",
        "accepted",
        "messages",
        "attempts",
        "done",
        "started",
        "rounds",
        "responses",
        "accepted_of",
        "on_complete",
        "free",
    )

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.need = np.zeros(capacity, dtype=np.int64)
        self.total = np.zeros(capacity, dtype=np.int64)
        self.resolved = np.zeros(capacity, dtype=np.int64)
        self.accepted = np.zeros(capacity, dtype=np.int64)
        self.messages = np.zeros(capacity, dtype=np.int64)
        self.attempts = np.zeros(capacity, dtype=np.int64)
        self.done = np.zeros(capacity, dtype=bool)
        self.started = np.zeros(capacity, dtype=np.float64)
        self.rounds: list[Round | None] = [None] * capacity
        self.responses: list[list | None] = [None] * capacity
        self.accepted_of: list[list | None] = [None] * capacity
        self.on_complete: list = [None] * capacity
        self.free = list(range(capacity - 1, -1, -1))

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in (
            "need",
            "total",
            "resolved",
            "accepted",
            "messages",
            "attempts",
        ):
            grown = np.zeros(new, dtype=np.int64)
            grown[:old] = getattr(self, name)
            setattr(self, name, grown)
        done = np.zeros(new, dtype=bool)
        done[:old] = self.done
        self.done = done
        started = np.zeros(new, dtype=np.float64)
        started[:old] = self.started
        self.started = started
        self.rounds.extend([None] * old)
        self.responses.extend([None] * old)
        self.accepted_of.extend([None] * old)
        self.on_complete.extend([None] * old)
        self.free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def alloc(self, round_: Round, now: float, on_complete) -> int:
        if not self.free:
            self._grow()
        slot = self.free.pop()
        need = round_.need
        self.need[slot] = -1 if need is None else need
        self.total[slot] = len(round_.requests)
        self.resolved[slot] = 0
        self.accepted[slot] = 0
        self.messages[slot] = 0
        self.attempts[slot] = 0
        self.done[slot] = False
        self.started[slot] = now
        self.rounds[slot] = round_
        self.responses[slot] = []
        self.accepted_of[slot] = []
        self.on_complete[slot] = on_complete
        return slot

    def release(self, slot: int) -> None:
        self.rounds[slot] = None
        self.responses[slot] = None
        self.accepted_of[slot] = None
        self.on_complete[slot] = None
        self.free.append(slot)


class _Wave:
    """All attempts of one fan-out sent at the same instant.

    Replaces the per-attempt ``_Attempt`` objects: one shared flags list,
    one live-count, one timeout timer for the whole wave. ``refs`` counts
    scheduled events (delivery/reply groups, queued serve jobs, the armed
    timer) still referencing the wave — it recycles through the
    coordinator's free-list only once ``live`` and ``refs`` both hit 0.
    A resend is its own single-request wave at ``number + 1``.
    """

    __slots__ = ("slot", "requests", "number", "resolved", "live", "refs", "timer")

    def __init__(self) -> None:
        self.slot = -1
        self.requests: list[Request] | None = None
        self.number = 0
        self.resolved: list[bool] = []
        self.live = 0
        self.refs = 0
        self.timer: Timer | None = None


class _WaveSet:
    """Drain set over waves, reporting per-attempt counts.

    API twin of :class:`~repro.runtime.drain.DrainSet` as the old
    per-attempt path used it: ``len`` is the number of unresolved
    *attempts* (summed over member waves), and ``cancel_all`` deadens
    them all, returning that count.
    """

    __slots__ = ("_waves",)

    def __init__(self) -> None:
        self._waves: dict[_Wave, None] = {}

    def add(self, wave: _Wave) -> None:
        self._waves[wave] = None

    def discard(self, wave: _Wave) -> None:
        self._waves.pop(wave, None)

    def __len__(self) -> int:
        return sum(wave.live for wave in self._waves)

    def __contains__(self, wave: _Wave) -> bool:
        return wave in self._waves

    def cancel_all(self) -> int:
        count = 0
        for wave in list(self._waves):
            count += wave.live
            resolved = wave.resolved
            for i in range(len(resolved)):
                resolved[i] = True
            wave.live = 0
            timer = wave.timer
            if timer is not None:
                timer.cancel()
                wave.timer = None
                wave.refs -= 1
            # No recycling here: in-flight delivery/reply groups may
            # still reference the wave; they drain via the resolved
            # flags and release it when their refs reach zero.
        self._waves.clear()
        return count


class EventCoordinator:
    """Run protocol plans as concurrent message sessions on a simulator.

    Parameters
    ----------
    cluster:
        The storage cluster (shared with any instant-path engines, e.g.
        an out-of-band anti-entropy service).
    simulator:
        The discrete-event loop; failure/repair/partition schedules on
        the same simulator interleave with in-flight operations.
    latency:
        Per-message-leg latency model. Defaults to the cluster network's
        model, falling back to :class:`~repro.cluster.network.FixedLatency`.
    rng:
        Seed or Generator for latency sampling (determinism boundary).
    policy:
        Timeout/retry policy applied to every request.
    record_trace:
        Keep the full message trace for ``trace_hash()`` (deterministic
        replay checks).
    queues:
        Optional node-id -> :class:`NodeServiceQueue` mapping. Deliveries
        to a queued node wait their FIFO turn and a sampled service time
        before executing; nodes absent from the mapping (or the default
        ``None``) serve instantly, byte-identically to the queue-free
        path. Share one mapping across every coordinator on the substrate
        so shards contend for the same servers.
    site:
        Where this coordinator sits for per-link latency models
        (``LatencyModel.sample_link``): a node id whose rack the
        coordinator shares, or ``None`` for an off-cluster client.
        Distribution-only models ignore it.
    """

    mode = "event"

    def __init__(
        self,
        cluster: Cluster,
        simulator: Simulator,
        *,
        latency=None,
        rng=None,
        policy: RetryPolicy | None = None,
        record_trace: bool = False,
        queues: Mapping[int, NodeServiceQueue] | None = None,
        site: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.sim = simulator
        if latency is None:
            latency = cluster.network.latency
        if latency is None:
            from repro.cluster.network import FixedLatency

            latency = FixedLatency()
        self.latency = latency
        self.rng = make_rng(rng)
        self.policy = policy if policy is not None else RetryPolicy()
        self.queues = queues
        self.site = site
        self.in_flight = 0
        self.max_in_flight = 0
        self.ops_completed = 0
        self.rounds_run = 0
        self.round_messages: Counter = Counter()
        #: in-flight waves with live timeout timers (len() reports
        #: unresolved attempts — drain discipline shared with the async
        #: backend, see runtime/drain.py)
        self.outstanding = _WaveSet()
        #: trace entries are lazy (now, kind, node, method, attempt)
        #: tuples; ``trace_hash`` formats them
        self._trace: list[tuple] | None = [] if record_trace else None
        self._draining = False
        self._table = _SessionTable()
        self._wave_pool: list[_Wave] = []
        #: constant timeout delay ⇒ deadlines arm in non-decreasing
        #: order ⇒ one shared deque lane per distinct timeout value
        self._lane = simulator.monotone_lane(key=("timeout", self.policy.timeout))
        self._deliver_id = simulator.register_batch_handler(self._deliver_batch)
        self._reply_id = simulator.register_batch_handler(self._reply_batch)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def submit(self, plan: Plan, on_done: Callable[[Any], None] | None = None) -> OpHandle:
        """Start a plan; it completes asynchronously as the sim advances."""
        handle = OpHandle(started_at=self.sim.now)
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        self._advance(plan, handle, on_done, None)
        return handle

    def execute(self, plan: Plan) -> Any:
        """Submit one plan and pump the simulator until it completes.

        Single-operation convenience (tests, path-equivalence checks).
        Must not be called from inside a simulator callback — concurrent
        clients submit() instead.
        """
        if self._draining:
            raise SimulationError(
                "re-entrant EventCoordinator.execute(); use submit() from "
                "simulator callbacks"
            )
        handle = self.submit(plan)
        self._draining = True
        try:
            while not handle.done:
                if not self.sim.step():
                    raise SimulationError(
                        "event queue drained before the operation completed"
                    )
        finally:
            self._draining = False
        return handle.result

    def trace_hash(self) -> str:
        """SHA-256 over the recorded message trace (determinism check)."""
        if self._trace is None:
            raise SimulationError("trace recording is off (record_trace=False)")
        digest = hashlib.sha256()
        update = digest.update
        for now, kind, node, method, attempt in self._trace:
            update(
                f"{now!r} {kind} node={node} method={method} "
                f"attempt={attempt}\n".encode("ascii")
            )
        return digest.hexdigest()

    @property
    def trace_length(self) -> int:
        return len(self._trace) if self._trace is not None else 0

    def shutdown(self) -> int:
        """Cancel every outstanding attempt's timeout timer.

        Call when a coordinator is discarded mid-simulation (a finished
        sweep point, an aborted run): pending attempts are marked
        resolved and their armed timers cancelled, so the shared
        simulator's queues stop retaining dead sessions. Returns how
        many attempts were live. The coordinator stays usable —
        shutdown drains, it does not poison.
        """
        return self.outstanding.cancel_all()

    # ------------------------------------------------------------------ #
    # plan driving
    # ------------------------------------------------------------------ #

    def _advance(self, plan: Plan, handle: OpHandle, on_done, outcome) -> None:
        try:
            round_ = plan.send(outcome)
        except StopIteration as stop:
            handle.result = stop.value
            handle.finished_at = self.sim.now
            handle.done = True
            self.in_flight -= 1
            self.ops_completed += 1
            if hasattr(handle.result, "latency"):
                handle.result.latency = handle.finished_at - handle.started_at
            if on_done is not None:
                on_done(handle.result)
            return
        self._start_round(
            round_,
            lambda outcome: self._advance(plan, handle, on_done, outcome),
        )

    def _start_round(self, round_: Round, on_complete) -> None:
        self.rounds_run += 1
        if not round_.requests:
            # Empty fan-out: complete on the spot (need=None is satisfied
            # vacuously, a threshold is not).
            outcome = RoundOutcome(
                round=round_,
                responses=[],
                accepted=[],
                satisfied=round_.need is None,
                elapsed=0.0,
                messages=0,
            )
            self.cluster.network.record_round(0.0)
            on_complete(outcome)
            return
        slot = self._table.alloc(round_, self.sim.now, on_complete)
        self._send_wave(slot, round_.requests, 0)

    def _complete(self, slot: int, satisfied: bool) -> None:
        table = self._table
        table.done[slot] = True
        round_ = table.rounds[slot]
        elapsed = self.sim.now - float(table.started[slot])
        outcome = RoundOutcome(
            round=round_,
            responses=list(table.responses[slot]),
            accepted=list(table.accepted_of[slot]),
            satisfied=satisfied,
            elapsed=elapsed,
            messages=int(table.messages[slot]),
        )
        self.cluster.network.record_round(elapsed)
        table.on_complete[slot](outcome)

    # ------------------------------------------------------------------ #
    # quorum bookkeeping (SoA mirror of rounds.QuorumWait.offer)
    # ------------------------------------------------------------------ #

    def _offer(self, slot: int, response: Response) -> bool:
        """Record one resolved response; True when the round completed."""
        table = self._table
        round_ = table.rounds[slot]
        table.responses[slot].append(response)
        table.resolved[slot] += 1
        accept = round_.accept
        ok = response.ok if accept is _default_accept else accept(response)
        if ok:
            table.accepted_of[slot].append(response)
            table.accepted[slot] += 1
        if not ok and round_.abort_on_reject:
            self._complete(slot, False)
            return True
        need = round_.need
        accepted = table.accepted[slot]
        if need is not None:
            if accepted >= need:
                self._complete(slot, True)
                return True
            if accepted + (table.total[slot] - table.resolved[slot]) < need:
                self._complete(slot, False)
                return True
        if table.resolved[slot] == table.total[slot]:
            self._complete(slot, need is None or accepted >= need)
            return True
        return False

    # ------------------------------------------------------------------ #
    # message session layer (wave-batched)
    # ------------------------------------------------------------------ #

    def _new_wave(self, slot: int, requests: list[Request], number: int) -> _Wave:
        pool = self._wave_pool
        wave = pool.pop() if pool else _Wave()
        wave.slot = slot
        wave.requests = requests
        wave.number = number
        wave.resolved = [False] * len(requests)
        wave.live = len(requests)
        wave.refs = 0
        wave.timer = None
        return wave

    def _maybe_recycle(self, wave: _Wave) -> None:
        if wave.live == 0 and wave.refs == 0:
            wave.requests = None
            wave.timer = None
            self._wave_pool.append(wave)

    def _send_wave(self, slot: int, requests: list[Request], number: int) -> None:
        sim = self.sim
        now = sim.now
        net = self.cluster.network
        stats = net.stats
        table = self._table
        trace = self._trace
        partitioned = net._partitioned
        by_kind = stats.by_kind
        n = len(requests)
        wave = self._new_wave(slot, requests, number)
        bytes_sent = 0
        if trace is None and not partitioned:
            # Hot path: no trace formatting, no partition filtering. The
            # inlined payload scan skips the per-request list allocation
            # of ``_payload_bytes``.
            for request in requests:
                by_kind[request.method] += 1
                for value in request.args:
                    if isinstance(value, np.ndarray):
                        bytes_sent += value.nbytes
                if request.kwargs:
                    for value in request.kwargs.values():
                        if isinstance(value, np.ndarray):
                            bytes_sent += value.nbytes
            send_ids = range(n)
        else:
            send_ids = []
            for idx, request in enumerate(requests):
                node_id = request.node_id
                if trace is not None:
                    trace.append((now, "send", node_id, request.method, number))
                by_kind[request.method] += 1
                bytes_sent += _payload_bytes(request.args, request.kwargs)
                if node_id in partitioned:
                    # Silent drop: only the timeout resolves this attempt.
                    stats.messages_dropped += 1
                    if trace is not None:
                        trace.append((now, "drop", node_id, request.method, number))
                else:
                    send_ids.append(idx)
        stats.messages += n
        stats.bytes_sent += bytes_sent
        self.round_messages[table.rounds[slot].kind] += n
        table.messages[slot] += n
        table.attempts[slot] += n
        wave.timer = self._lane.schedule_call(
            now + self.policy.timeout, self._timeout_wave, wave
        )
        wave.refs += 1
        self.outstanding.add(wave)
        if send_ids:
            if len(send_ids) == n:
                peers = [request.node_id for request in requests]
            else:
                peers = [requests[i].node_id for i in send_ids]
            delays = self.latency.sample_links(self.rng, self.site, peers)
            # sum() with a start value performs the same left-to-right
            # float adds as the per-message reference path.
            stats.total_message_delay = sum(delays, stats.total_message_delay)
            self._schedule_groups(wave, self._deliver_id, send_ids, None, delays, now)

    def _schedule_groups(
        self,
        wave: _Wave,
        handler_id: int,
        idxs: list[int],
        responses: list[Response] | None,
        delays: list[float],
        now: float,
    ) -> None:
        """Schedule one batch event per distinct arrival time.

        Requests sharing a timestamp keep their relative order inside
        the group; the round's event allocation is atomic, so no foreign
        event can order between members of one group (see the reference
        module's ordering note).
        """
        sim = self.sim
        first = delays[0]
        if delays.count(first) == len(delays):
            # Uniform arrival time (fixed latency, or a single request):
            # one batch event, no grouping dict. The caller's lists are
            # consumed here, never reused, so they ride along as-is.
            at = now + first
            if responses is None:
                sim.schedule_batch(at, handler_id, (wave, idxs))
            else:
                sim.schedule_batch(at, handler_id, (wave, idxs, responses))
            wave.refs += 1
            return
        groups: dict[float, list] = {}
        for pos, idx in enumerate(idxs):
            at = now + delays[pos]
            group = groups.get(at)
            if group is None:
                groups[at] = group = ([], [] if responses is not None else None)
            group[0].append(idx)
            if responses is not None:
                group[1].append(responses[pos])
        for at, (gidxs, gresps) in groups.items():
            if gresps is None:
                sim.schedule_batch(at, handler_id, (wave, gidxs))
            else:
                sim.schedule_batch(at, handler_id, (wave, gidxs, gresps))
            wave.refs += 1

    # -- delivery ------------------------------------------------------- #

    def _deliver_batch(self, payloads: list) -> None:
        for payload in payloads:
            self._deliver_group(payload[0], payload[1])

    def _deliver_group(self, wave: _Wave, idxs) -> None:
        wave.refs -= 1
        net = self.cluster.network
        stats = net.stats
        trace = self._trace
        resolved = wave.resolved
        queues = self.queues
        if trace is None and not net._partitioned and queues is None:
            # Hot path: every delivery lands and serves instantly.
            serve_now = [idx for idx in idxs if not resolved[idx]]
            if serve_now:
                self._serve_group(wave, serve_now)
            self._maybe_recycle(wave)
            return
        now = self.sim.now
        requests = wave.requests
        number = wave.number
        partitioned = net._partitioned
        serve_now: list[int] = []
        queued: dict[NodeServiceQueue, list] | None = None
        for idx in idxs:
            if resolved[idx]:
                continue  # timed out (and possibly resent) before arriving
            request = requests[idx]
            node_id = request.node_id
            if node_id in partitioned:
                # Partition raced the message: dropped on the wire.
                stats.messages_dropped += 1
                if trace is not None:
                    trace.append((now, "drop", node_id, request.method, number))
                continue
            if trace is not None:
                trace.append((now, "deliver", node_id, request.method, number))
            queue = None if queues is None else queues.get(node_id)
            if queue is None:
                serve_now.append(idx)
            else:
                # The request joins the node's FIFO backlog; it executes
                # once the server reaches it (queue wait + sampled
                # service time), against the node's then-current state.
                if queued is None:
                    queued = {}
                jobs = queued.get(queue)
                if jobs is None:
                    queued[queue] = jobs = []
                wave.refs += 1
                jobs.append(self._queued_job(wave, idx))
        if queued is not None:
            for queue, jobs in queued.items():
                queue.push_many(jobs)
        if serve_now:
            self._serve_group(wave, serve_now)
        self._maybe_recycle(wave)

    def _queued_job(self, wave: _Wave, idx: int) -> Callable[[], None]:
        return lambda: self._serve_queued(wave, idx)

    # -- service -------------------------------------------------------- #

    def _execute_rpc(self, request: Request) -> Response:
        net = self.cluster.network
        node = self.cluster.nodes[request.node_id]
        if not node.alive:
            # Fail-stop refusal: an error reply travels back immediately
            # (connection reset), distinct from the silent partition drop.
            node.stats.failed_rpcs += 1
            net.stats.rpc_failures += 1
            return Response(
                request=request, ok=False, error=NodeUnavailableError(request.node_id)
            )
        try:
            value = getattr(node, request.method)(*request.args, **request.kwargs)
            # Delivery-time corruption: a Byzantine node lies as it
            # serves the request, so messages that were queued or
            # in-flight when the node turned are affected too.
            if node.byzantine is not None:
                value = node.byzantine.apply(node, request.method, value, request.args)
            return Response(request=request, ok=True, value=value)
        except request.catches as exc:
            net.stats.rpc_failures += 1
            return Response(request=request, ok=False, error=exc)

    def _serve_group(self, wave: _Wave, idxs: list[int]) -> None:
        # _execute_rpc, inlined over the group: one attribute-lookup
        # prologue per batch instead of per request.
        requests = wave.requests
        nodes = self.cluster.nodes
        stats = self.cluster.network.stats
        responses: list[Response] = []
        append = responses.append
        peers: list[int] = []
        for idx in idxs:
            request = requests[idx]
            node_id = request.node_id
            peers.append(node_id)
            node = nodes[node_id]
            if not node.alive:
                # Fail-stop refusal: an error reply travels back
                # immediately (connection reset), distinct from the
                # silent partition drop.
                node.stats.failed_rpcs += 1
                stats.rpc_failures += 1
                append(Response(request, False, None, NodeUnavailableError(node_id)))
                continue
            try:
                value = getattr(node, request.method)(*request.args, **request.kwargs)
                # Delivery-time corruption: a Byzantine node lies as it
                # serves the request, so messages that were queued or
                # in-flight when the node turned are affected too.
                if node.byzantine is not None:
                    value = node.byzantine.apply(node, request.method, value, request.args)
                append(Response(request, True, value))
            except request.catches as exc:
                stats.rpc_failures += 1
                append(Response(request, False, None, exc))
        delays = self.latency.sample_links(self.rng, self.site, peers)
        stats.total_message_delay = sum(delays, stats.total_message_delay)
        self._schedule_groups(
            wave, self._reply_id, idxs, responses, delays, self.sim.now
        )

    def _serve_queued(self, wave: _Wave, idx: int) -> None:
        # Runs when the node's FIFO server reaches the job. The RPC
        # executes even if the attempt has timed out meanwhile
        # (at-least-once delivery); the reply leg is then discarded on
        # arrival by the resolved flag.
        wave.refs -= 1
        request = wave.requests[idx]
        response = self._execute_rpc(request)
        net = self.cluster.network
        delay = self.latency.sample_link(self.rng, request.node_id, self.site)
        net.stats.total_message_delay += delay
        self.sim.schedule_batch(
            self.sim.now + delay, self._reply_id, (wave, (idx,), (response,))
        )
        wave.refs += 1

    # -- replies -------------------------------------------------------- #

    def _reply_batch(self, payloads: list) -> None:
        for payload in payloads:
            self._reply_group(payload[0], payload[1], payload[2])

    def _reply_group(self, wave: _Wave, idxs, responses) -> None:
        wave.refs -= 1
        table = self._table
        slot = wave.slot
        net = self.cluster.network
        stats = net.stats
        trace = self._trace
        resolved = wave.resolved
        partitioned = net._partitioned
        round_messages = self.round_messages
        done = bool(table.done[slot])
        if trace is None and not partitioned:
            # Hot path: every reply lands (no trace, no partitions). The
            # quorum counters are mirrored into plain-int locals for the
            # duration of the group — one numpy scalar read/write per
            # *group* instead of several per reply — and flushed back
            # before any completion callback can observe the table.
            fresh = 0    # unresolved attempts this group resolves
            offered = 0  # replies fed to the quorum wait (pre-done)
            loaded = flushed = abort = False
            need = acc = res = total = 0
            accept = resp_list = acc_list = None
            for pos, idx in enumerate(idxs):
                if resolved[idx]:
                    continue
                resolved[idx] = True
                fresh += 1
                if done:
                    continue  # straggler: traffic only
                if not loaded:
                    loaded = True
                    round_ = table.rounds[slot]
                    need = round_.need
                    accept = round_.accept
                    abort = round_.abort_on_reject
                    resp_list = table.responses[slot]
                    acc_list = table.accepted_of[slot]
                    res = int(table.resolved[slot])
                    acc = int(table.accepted[slot])
                    total = int(table.total[slot])
                response = responses[pos]
                offered += 1
                resp_list.append(response)
                res += 1
                ok = response.ok if accept is _default_accept else accept(response)
                if ok:
                    acc_list.append(response)
                    acc += 1
                # Completion logic of _offer over the mirrored locals.
                satisfied = None
                if not ok and abort:
                    satisfied = False
                elif need is not None:
                    if acc >= need:
                        satisfied = True
                    elif acc + (total - res) < need:
                        satisfied = False
                elif res == total:
                    satisfied = True
                if satisfied is not None:
                    table.resolved[slot] = res
                    table.accepted[slot] = acc
                    table.messages[slot] += offered
                    flushed = True
                    self._complete(slot, satisfied)
                    done = True
            if fresh:
                stats.messages += fresh
                # fresh > 0 ⇒ attempts[slot] > 0 ⇒ the slot is still
                # live, so the kind lookup is safe even post-completion.
                round_messages[table.rounds[slot].kind] += fresh
                wave.live -= fresh
                table.attempts[slot] -= fresh
                if loaded and not flushed:
                    table.resolved[slot] = res
                    table.accepted[slot] = acc
                    table.messages[slot] += offered
                if done and table.attempts[slot] == 0:
                    table.release(slot)
        else:
            now = self.sim.now
            requests = wave.requests
            number = wave.number
            # The slot is guaranteed live (and still this wave's round)
            # while any of the wave's attempts is unresolved, so look the
            # kind up lazily at the first unresolved reply instead of
            # upfront — a fully-resolved straggler group may arrive after
            # slot release.
            kind: str | None = None
            for pos, idx in enumerate(idxs):
                if resolved[idx]:
                    continue
                request = requests[idx]
                node_id = request.node_id
                if node_id in partitioned:
                    # The reply leg is cut too: the coordinator hears
                    # nothing.
                    stats.messages_dropped += 1
                    if trace is not None:
                        trace.append(
                            (now, "drop-reply", node_id, request.method, number)
                        )
                    continue
                if trace is not None:
                    trace.append((now, "reply", node_id, request.method, number))
                stats.messages += 1
                if kind is None:
                    kind = table.rounds[slot].kind
                round_messages[kind] += 1
                resolved[idx] = True
                wave.live -= 1
                table.attempts[slot] -= 1
                if not done:
                    table.messages[slot] += 1
                    done = self._offer(slot, responses[pos])
                # else: straggler — traffic only, the round completed
                if done and table.attempts[slot] == 0:
                    table.release(slot)
        if wave.live == 0:
            self.outstanding.discard(wave)
            timer = wave.timer
            if timer is not None:
                timer.cancel()
                wave.timer = None
                wave.refs -= 1
        self._maybe_recycle(wave)

    # -- timeouts ------------------------------------------------------- #

    def _timeout_wave(self, wave: _Wave) -> None:
        wave.refs -= 1
        wave.timer = None
        if wave.live == 0:
            self._maybe_recycle(wave)
            return
        table = self._table
        slot = wave.slot
        net = self.cluster.network
        stats = net.stats
        trace = self._trace
        now = self.sim.now
        requests = wave.requests
        resolved = wave.resolved
        number = wave.number
        retries = self.policy.retries
        done = bool(table.done[slot])
        for idx in range(len(requests)):
            if resolved[idx]:
                continue
            request = requests[idx]
            resolved[idx] = True
            wave.live -= 1
            table.attempts[slot] -= 1
            if done:
                # The round completed without this attempt: drop it
                # quietly. Straggler *responses* keep flowing (they are
                # real traffic), but nothing retransmits on behalf of a
                # finished operation.
                if table.attempts[slot] == 0:
                    table.release(slot)
                continue
            stats.timeouts += 1
            if trace is not None:
                trace.append((now, "timeout", request.node_id, request.method, number))
            if number < retries:
                stats.retries += 1
                self._send_wave(slot, [request], number + 1)
                continue
            response = Response(
                request=request,
                ok=False,
                error=NodeUnavailableError(request.node_id),
            )
            done = self._offer(slot, response)
            if done and table.attempts[slot] == 0:
                table.release(slot)
        self.outstanding.discard(wave)
        self._maybe_recycle(wave)
