"""Configuration calibration against the paper's quoted anchor values.

The paper states the figures use "n = 15" but never spells out (k, a, b,
h, w). Its prose quotes two anchors for Figure 3: at p = 0.5 the read
availability is "about 75%" for full replication and "just 63%" for ERC.
This module scans candidate configurations and scores them against those
anchors; the winner — (k=8, shape (2,3,1), w=3), which hits 0.7500 /
0.6351 — is the canonical configuration hard-coded in
:mod:`repro.bench.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.availability import read_availability_erc, read_availability_fr
from repro.quorum.trapezoid import TrapezoidQuorum, shapes_for_nbnode

__all__ = ["CalibrationResult", "scan_fig3_configs"]

FR_ANCHOR = 0.75
ERC_ANCHOR = 0.63
ANCHOR_P = 0.5


@dataclass(frozen=True)
class CalibrationResult:
    """One candidate configuration and its distance to the anchors."""

    k: int
    a: int
    b: int
    h: int
    w: int
    fr_at_anchor: float
    erc_at_anchor: float

    @property
    def score(self) -> float:
        """L1 distance to the paper's quoted (0.75, 0.63) pair."""
        return abs(self.fr_at_anchor - FR_ANCHOR) + abs(self.erc_at_anchor - ERC_ANCHOR)


def scan_fig3_configs(
    n: int = 15, ks=None, max_h: int = 3, top: int = 10
) -> list[CalibrationResult]:
    """Score every (k, shape, w) candidate for Figure 3; best first.

    Candidates: k in ``ks`` (default 2..n-1), every trapezoid shape for
    Nbnode = n - k + 1 with height <= ``max_h``, every eq.-16 write
    parameter w in 1..s_1.
    """
    ks = range(2, n) if ks is None else ks
    results: list[CalibrationResult] = []
    for k in ks:
        nbnode = n - k + 1
        for shape in shapes_for_nbnode(nbnode, max_h=max_h):
            w_range = range(1, shape.level_size(1) + 1) if shape.h >= 1 else [None]
            for w in w_range:
                quorum = TrapezoidQuorum.uniform(shape, w)
                fr = float(read_availability_fr(quorum, ANCHOR_P))
                erc = float(read_availability_erc(quorum, n, k, ANCHOR_P))
                results.append(
                    CalibrationResult(
                        k=k,
                        a=shape.a,
                        b=shape.b,
                        h=shape.h,
                        w=w if w is not None else quorum.w[0],
                        fr_at_anchor=fr,
                        erc_at_anchor=erc,
                    )
                )
    results.sort(key=lambda r: r.score)
    return results[:top]
