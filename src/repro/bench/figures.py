"""Data-series generators for every figure of the paper.

Each ``figN_series`` function regenerates the data behind the paper's
Figure N, returning a :class:`FigureSeries` (x grid + named columns) that
the benchmark harness renders as text and CSV. The canonical configuration
was calibrated against the figure anchors quoted in the paper's prose (see
``repro.bench.calibrate`` and EXPERIMENTS.md):

* n = 15, k = 8  =>  Nbnode = n - k + 1 = 8,
* trapezoid shape (a=2, b=3, h=1): levels (3, 5),
* eq. 16 write-quorum vector with w in 1..s_1 = 5, anchor w = 3.

With these, eq. 10 gives FR read availability 0.7500 at p = 0.5 and
eq. 13 gives 0.6351 — the paper's "about 75%" vs "just 63%".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.availability import (
    read_availability_erc,
    read_availability_fr,
    write_availability,
)
from repro.analysis.exact import exact_read_erc
from repro.analysis.storage import storage_series
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum, TrapezoidShape

__all__ = [
    "FIG_N",
    "FIG_K",
    "FIG_SHAPE",
    "FIG_W_ANCHOR",
    "fig_quorum",
    "FigureSeries",
    "fig1_layout",
    "fig2_series",
    "fig3_series",
    "fig4_quorum",
    "fig4_series",
    "fig5_series",
    "default_p_grid",
]

#: Calibrated canonical configuration (see module docstring).
FIG_N = 15
FIG_K = 8
FIG_SHAPE = TrapezoidShape(2, 3, 1)
FIG_W_ANCHOR = 3


def fig_quorum(w: int = FIG_W_ANCHOR) -> TrapezoidQuorum:
    """The canonical trapezoid quorum with eq.-16 parameter ``w``."""
    return TrapezoidQuorum.uniform(FIG_SHAPE, w)


def default_p_grid() -> np.ndarray:
    """Node-availability grid used by the figures: 0.05 .. 1.00."""
    return np.round(np.arange(0.05, 1.0001, 0.05), 10)


@dataclass
class FigureSeries:
    """One figure's regenerated data: an x grid plus named y columns."""

    name: str
    xlabel: str
    x: np.ndarray
    columns: dict[str, np.ndarray]
    notes: str = ""

    def __post_init__(self) -> None:
        for label, col in self.columns.items():
            if np.asarray(col).shape != np.asarray(self.x).shape:
                raise ConfigurationError(
                    f"column {label!r} has shape {np.asarray(col).shape}, "
                    f"expected {np.asarray(self.x).shape}"
                )

    def render_text(self, precision: int = 4) -> str:
        """Fixed-width table (the harness prints this per figure)."""
        labels = list(self.columns)
        width = max(10, max(len(l) for l in labels) + 2)
        header = f"{self.xlabel:>8} " + " ".join(f"{l:>{width}}" for l in labels)
        lines = [self.name, "=" * len(self.name)]
        if self.notes:
            lines.append(self.notes)
        lines.append(header)
        lines.append("-" * len(header))
        for idx, xv in enumerate(self.x):
            row = f"{xv:8.2f} " + " ".join(
                f"{self.columns[l][idx]:>{width}.{precision}f}" for l in labels
            )
            lines.append(row)
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Dump as CSV with the x column first."""
        labels = list(self.columns)
        data = np.column_stack([self.x] + [self.columns[l] for l in labels])
        header = ",".join([self.xlabel] + labels)
        np.savetxt(path, data, delimiter=",", header=header, comments="")


# --------------------------------------------------------------------- #
# Figure 1 — the trapezoid layout illustration
# --------------------------------------------------------------------- #

def fig1_layout() -> str:
    """Figure 1: the Nbnode = 15 trapezoid with s_l = 2l + 3.

    Returns the ASCII rendering; the level sizes (3, 5, 7) are asserted by
    the bench and tests.
    """
    shape = TrapezoidShape(2, 3, 2)
    art = shape.ascii_art()
    return (
        "Figure 1: trapezoid layout, Nbnode = 15, s_l = 2l + 3 "
        "(a=2, b=3, h=2)\n" + art
    )


# --------------------------------------------------------------------- #
# Figure 2 — write availability of TRAP-ERC vs p, curves over w
# --------------------------------------------------------------------- #

def fig2_series(p: np.ndarray | None = None) -> FigureSeries:
    """Write availability (eqs. 8-9) for w = 1..s_1.

    Identical for TRAP-FR and TRAP-ERC (the paper's "first noticeable
    point"); the curves show the cost of larger write quorums.
    """
    p = default_p_grid() if p is None else np.asarray(p, dtype=np.float64)
    s1 = FIG_SHAPE.level_size(1)
    columns = {
        f"w={w}": write_availability(fig_quorum(w), p) for w in range(1, s1 + 1)
    }
    return FigureSeries(
        name=f"Figure 2: TRAP-ERC write availability, n={FIG_N}, k={FIG_K}, "
        f"shape (a=2,b=3,h=1)",
        xlabel="p",
        x=p,
        columns=columns,
        notes="P_write = prod_l Phi_{s_l}(w_l, s_l); identical for FR and ERC.",
    )


# --------------------------------------------------------------------- #
# Figure 3 — read availability, TRAP-ERC vs TRAP-FR
# --------------------------------------------------------------------- #

def fig3_series(p: np.ndarray | None = None, w: int = FIG_W_ANCHOR) -> FigureSeries:
    """Read availability of TRAP-FR (eq. 10) vs TRAP-ERC (eq. 13).

    Also includes the exact Algorithm-2 availability (our enumeration) to
    quantify the paper's P2 approximation.
    """
    p = default_p_grid() if p is None else np.asarray(p, dtype=np.float64)
    quorum = fig_quorum(w)
    columns = {
        "TRAP-FR (eq.10)": read_availability_fr(quorum, p),
        "TRAP-ERC (eq.13)": read_availability_erc(quorum, FIG_N, FIG_K, p),
        "TRAP-ERC (exact)": exact_read_erc(quorum, FIG_N, FIG_K, p),
    }
    return FigureSeries(
        name=f"Figure 3: read availability, n={FIG_N}, k={FIG_K}, w={w}",
        xlabel="p",
        x=p,
        columns=columns,
        notes="Paper anchors at p=0.5: FR ~ 0.75, ERC ~ 0.63; curves merge for p >= 0.8.",
    )


# --------------------------------------------------------------------- #
# Figure 4 — read availability of TRAP-ERC vs p for growing n - k
# --------------------------------------------------------------------- #

def _fig4_shape(nbnode: int) -> TrapezoidShape:
    """Two-level shapes of the canonical family for the fig-4 sweep.

    Keeps b = 3, h = 1 and grows the base: (a = nbnode - 6, 3, 1) for
    nbnode >= 6; the smallest budget uses (2, 1, 1).
    """
    if nbnode >= 6:
        return TrapezoidShape(nbnode - 6, 3, 1)
    if nbnode == 4:
        return TrapezoidShape(2, 1, 1)
    raise ConfigurationError(f"unsupported fig-4 node budget {nbnode}")


def fig4_quorum(k: int) -> TrapezoidQuorum:
    """Per-level-majority quorum of the fig-4 family for a given k.

    Using ``w_l = floor(s_l / 2) + 1`` on every level keeps the quorum
    policy constant while the trapezoid grows with n - k; at the anchor
    configuration (k = 8) this coincides with the calibrated w = 3.
    """
    shape = _fig4_shape(FIG_N - k + 1)
    w = tuple(shape.level_size(l) // 2 + 1 for l in shape.levels)
    return TrapezoidQuorum(shape, w)


def fig4_series(
    p: np.ndarray | None = None, ks: tuple[int, ...] = (12, 10, 8, 6, 4)
) -> FigureSeries:
    """TRAP-ERC read availability (eq. 13) as redundancy n - k grows.

    n is fixed at 15 (as in all the paper's figures) and k swept downward,
    so each curve has Nbnode = 16 - k trapezoid nodes and a per-level
    majority write quorum. The paper's claim: "the greater this difference
    is ... the better is the read availability"; it holds everywhere for
    p >= 0.3, with sub-0.5% inversions at very small p caused by the
    discrete shape changes (recorded in EXPERIMENTS.md).
    """
    p = default_p_grid() if p is None else np.asarray(p, dtype=np.float64)
    columns: dict[str, np.ndarray] = {}
    for k in ks:
        quorum = fig4_quorum(k)
        columns[f"n-k={FIG_N - k}"] = read_availability_erc(quorum, FIG_N, k, p)
    return FigureSeries(
        name=f"Figure 4: TRAP-ERC read availability vs redundancy, n={FIG_N}",
        xlabel="p",
        x=p,
        columns=columns,
        notes="Larger n - k (bigger trapezoid, more parities) => higher availability.",
    )


# --------------------------------------------------------------------- #
# Figure 5 — storage used / blocksize vs k
# --------------------------------------------------------------------- #

def fig5_series(n: int = FIG_N, ks=None) -> FigureSeries:
    """Storage per data block (eqs. 14-15) as a function of k."""
    ks = list(range(1, n)) if ks is None else [int(k) for k in ks]
    karr, erc, fr = storage_series(n, ks)
    return FigureSeries(
        name=f"Figure 5: storage used / blocksize, n={n}",
        xlabel="k",
        x=karr.astype(np.float64),
        columns={"TRAP-ERC (n/k)": erc, "TRAP-FR (n-k+1)": fr},
        notes=(
            "Eq. 14 vs eq. 15. At k=8: FR = 8, ERC = 1.875 (the prose's "
            "'4 blocks / 50%' example is inconsistent with eq. 15; see "
            "EXPERIMENTS.md)."
        ),
    )
