"""Figure-regeneration harness (DESIGN.md S9).

``repro.bench.figures`` holds one series generator per paper figure;
``repro.bench.calibrate`` documents how the canonical configuration was
matched to the paper's quoted anchor numbers; ``repro.bench.runner``
renders and persists everything (also exposed as ``python -m repro.bench``).
"""

from repro.bench.calibrate import CalibrationResult, scan_fig3_configs
from repro.bench.perf import DEFAULT_SIZES, TINY_SIZES, run_perf, write_perf_json
from repro.bench.figures import (
    FIG_K,
    FIG_N,
    FIG_SHAPE,
    FIG_W_ANCHOR,
    FigureSeries,
    default_p_grid,
    fig1_layout,
    fig2_series,
    fig3_series,
    fig4_quorum,
    fig4_series,
    fig5_series,
    fig_quorum,
)
from repro.bench.runner import all_series, results_dir, run_all

__all__ = [
    "FIG_N",
    "FIG_K",
    "FIG_SHAPE",
    "FIG_W_ANCHOR",
    "fig_quorum",
    "FigureSeries",
    "default_p_grid",
    "fig1_layout",
    "fig2_series",
    "fig3_series",
    "fig4_quorum",
    "fig4_series",
    "fig5_series",
    "CalibrationResult",
    "scan_fig3_configs",
    "all_series",
    "run_all",
    "results_dir",
    "DEFAULT_SIZES",
    "TINY_SIZES",
    "run_perf",
    "write_perf_json",
]

# NOTE: repro.bench.compare (the CI regression gate) is deliberately not
# re-exported here so `python -m repro.bench.compare` runs without the
# found-in-sys.modules RuntimeWarning.
