"""Rendering and persistence for the figure harness.

``python -m repro.bench`` (see ``__main__``) regenerates every figure's
series, prints the tables, and writes CSVs under ``results/``. The pytest
benchmarks call the same entry points, so the printed rows and the CSV
artifacts always agree.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.figures import (
    FigureSeries,
    fig1_layout,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
)

__all__ = ["all_series", "run_all", "results_dir"]


def results_dir(base: str | os.PathLike | None = None) -> Path:
    """``results/`` next to the repository root (created on demand)."""
    if base is None:
        base = os.environ.get("REPRO_RESULTS_DIR", Path.cwd() / "results")
    path = Path(base)
    path.mkdir(parents=True, exist_ok=True)
    return path


def all_series() -> list[FigureSeries]:
    """Every figure's regenerated data series (Figures 2-5)."""
    return [fig2_series(), fig3_series(), fig4_series(), fig5_series()]


def run_all(base: str | os.PathLike | None = None, quiet: bool = False) -> list[Path]:
    """Regenerate all figures; print tables; write CSVs. Returns paths."""
    out_dir = results_dir(base)
    written: list[Path] = []

    layout = fig1_layout()
    if not quiet:
        print(layout)
        print()
    fig1_path = out_dir / "fig1_layout.txt"
    fig1_path.write_text(layout + "\n")
    written.append(fig1_path)

    for idx, series in enumerate(all_series(), start=2):
        if not quiet:
            print(series.render_text())
            print()
        path = out_dir / f"fig{idx}.csv"
        series.to_csv(path)
        written.append(path)
    return written
