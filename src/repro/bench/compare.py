"""Regression gate: compare two ``BENCH_perf.json`` documents.

``python -m repro.bench.compare BASELINE FRESH [--max-regression 0.3]``
re-reads the committed perf document and a freshly generated one and
fails (exit 1) when any throughput metric regressed by more than the
tolerance: ``mb_per_s`` / ``trials_per_s`` / ``ops_per_s`` (the
event-runtime latency benchmark) dropping, or — for entries
that only report wall time, like the exact-enumeration and optimizer
benchmarks — ``seconds_per_call`` rising. CI runs this after the perf
smoke so a PR cannot silently slow a tracked hot path.

The ``parallel_scaling`` entry gets its own gate: ``byte_identical``
must hold (a process-pool run that diverges from serial is a
correctness bug, not a perf number), and on hosts with at least as many
CPUs as the benchmarked worker count the measured speedup must reach
``--min-parallel-speedup`` (default 2.5). A host with fewer cores than
workers cannot realize the speedup, so its entry is informational —
the committed baseline may come from a small container while CI's
multi-core runners enforce the ratio.

Documents produced with different ``config`` sections measure different
workloads; comparing them is meaningless, so that is an error by default
(``--allow-config-mismatch`` to override, e.g. when resizing the harness
on purpose).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MAX_REGRESSION",
    "DEFAULT_MIN_PARALLEL_SPEEDUP",
    "compare_docs",
    "main",
    "wallclock_deltas",
]

DEFAULT_MAX_REGRESSION = 0.30

#: Required parallel_scaling speedup where the host has the cores for it.
DEFAULT_MIN_PARALLEL_SPEEDUP = 2.5

#: metric preference per results entry; (key, higher_is_better). Only the
#: first key present is compared — mb_per_s / ops_per_s and
#: seconds_per_call are reciprocal views of one measurement.
_METRIC_KEYS = (
    ("mb_per_s", True),
    ("trials_per_s", True),
    ("ops_per_s", True),
    ("seconds_per_call", False),
)


def _metric(entry) -> tuple[str, float, bool] | None:
    """The comparable metric of one results entry, or None (counters)."""
    if not isinstance(entry, dict):
        return None
    for key, higher_is_better in _METRIC_KEYS:
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return key, float(value), higher_is_better
    return None


def _parallel_scaling_gate(fresh: dict, min_speedup: float) -> list[str]:
    """Failures for the fresh document's ``parallel_scaling`` entry.

    ``byte_identical`` must be present and true. The speedup floor is
    enforced only when the measuring host had at least ``jobs`` CPUs;
    a smaller host physically cannot realize it, so its (recorded)
    numbers stay informational.
    """
    entry = fresh.get("results", {}).get("parallel_scaling")
    if entry is None:
        return []
    failures: list[str] = []
    if entry.get("byte_identical") is not True:
        failures.append(
            "parallel_scaling: byte_identical is not true — the parallel "
            "run diverged from serial (determinism contract broken)"
        )
    jobs = entry.get("jobs")
    host_cpus = entry.get("host_cpus")
    speedup = entry.get("speedup")
    if not isinstance(speedup, (int, float)):
        failures.append("parallel_scaling: speedup missing from fresh entry")
    elif (
        isinstance(jobs, int)
        and isinstance(host_cpus, int)
        and host_cpus >= jobs
        and speedup < min_speedup
    ):
        failures.append(
            f"parallel_scaling: speedup {speedup:.2f}x below the "
            f"{min_speedup:.2f}x floor at jobs={jobs} on a "
            f"{host_cpus}-CPU host"
        )
    return failures


def wallclock_deltas(baseline: dict, fresh: dict) -> list[str]:
    """Human-readable per-section wall-clock deltas (old -> new seconds).

    Informational only — covers every entry both documents time,
    regardless of which metric the gate compares.
    """
    lines: list[str] = []
    fresh_results = fresh.get("results", {})
    for name, entry in baseline.get("results", {}).items():
        if not isinstance(entry, dict):
            continue
        old = entry.get("seconds_per_call")
        fresh_entry = fresh_results.get(name)
        new = (
            fresh_entry.get("seconds_per_call")
            if isinstance(fresh_entry, dict)
            else None
        )
        if not isinstance(old, (int, float)) or old <= 0:
            continue
        if not isinstance(new, (int, float)) or new <= 0:
            lines.append(f"{name}: {old:.6g}s -> (missing)")
            continue
        change = (new - old) / old * 100.0
        lines.append(
            f"{name}: {old:.6g}s -> {new:.6g}s ({change:+.1f}%)"
        )
    return lines


def compare_docs(
    baseline: dict,
    fresh: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    require_matching_config: bool = True,
    min_parallel_speedup: float = DEFAULT_MIN_PARALLEL_SPEEDUP,
) -> list[str]:
    """Regression messages for every baseline metric the fresh run lost.

    A metric regresses when its better-direction ratio falls below
    ``1 - max_regression``; a baseline metric missing from the fresh
    document counts as a regression (a silently dropped benchmark must
    not pass the gate). The fresh ``parallel_scaling`` entry additionally
    passes :func:`_parallel_scaling_gate`. Returns an empty list when
    the gate is green.
    """
    if not 0.0 < max_regression < 1.0:
        raise ConfigurationError(
            f"max_regression must be in (0, 1), got {max_regression}"
        )
    if require_matching_config and baseline.get("config") != fresh.get("config"):
        raise ConfigurationError(
            "baseline and fresh documents ran different configs; their "
            "numbers are not comparable (regenerate with matching sizes "
            "or pass --allow-config-mismatch)"
        )
    regressions: list[str] = []
    for name, entry in baseline.get("results", {}).items():
        base = _metric(entry)
        if base is None:
            continue
        key, old, higher_is_better = base
        fresh_entry = fresh.get("results", {}).get(name)
        new_metric = _metric(fresh_entry)
        if new_metric is None or new_metric[0] != key:
            regressions.append(f"{name}: {key} missing from fresh document")
            continue
        new = new_metric[1]
        ratio = new / old if higher_is_better else old / new
        if ratio < 1.0 - max_regression:
            regressions.append(
                f"{name}: {key} regressed {old:.6g} -> {new:.6g} "
                f"({(1.0 - ratio) * 100.0:.1f}% worse)"
            )
    regressions.extend(_parallel_scaling_gate(fresh, min_parallel_speedup))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="fail when a fresh perf document regresses the baseline",
    )
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="freshly generated perf JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional loss per metric (default 0.3)",
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="compare even when the two documents ran different sizes",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=DEFAULT_MIN_PARALLEL_SPEEDUP,
        help="required parallel_scaling speedup on hosts with >= jobs "
        "CPUs (default 2.5)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-section wall-clock delta summary",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    regressions = compare_docs(
        baseline,
        fresh,
        max_regression=args.max_regression,
        require_matching_config=not args.allow_config_mismatch,
        min_parallel_speedup=args.min_parallel_speedup,
    )
    if not args.quiet:
        deltas = wallclock_deltas(baseline, fresh)
        if deltas:
            print("wall-clock per section (baseline -> fresh):")
            for line in deltas:
                print(f"  {line}")
    if regressions:
        print(f"{len(regressions)} perf regression(s) beyond {args.max_regression:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"perf gate OK: no metric regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
