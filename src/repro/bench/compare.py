"""Regression gate: compare two ``BENCH_perf.json`` documents.

``python -m repro.bench.compare BASELINE FRESH [--max-regression 0.3]``
re-reads the committed perf document and a freshly generated one and
fails (exit 1) when any throughput metric regressed by more than the
tolerance: ``mb_per_s`` / ``trials_per_s`` / ``ops_per_s`` (the
event-runtime latency benchmark) dropping, or — for entries
that only report wall time, like the exact-enumeration and optimizer
benchmarks — ``seconds_per_call`` rising. CI runs this after the perf
smoke so a PR cannot silently slow a tracked hot path.

Documents produced with different ``config`` sections measure different
workloads; comparing them is meaningless, so that is an error by default
(``--allow-config-mismatch`` to override, e.g. when resizing the harness
on purpose).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_MAX_REGRESSION", "compare_docs", "main"]

DEFAULT_MAX_REGRESSION = 0.30

#: metric preference per results entry; (key, higher_is_better). Only the
#: first key present is compared — mb_per_s / ops_per_s and
#: seconds_per_call are reciprocal views of one measurement.
_METRIC_KEYS = (
    ("mb_per_s", True),
    ("trials_per_s", True),
    ("ops_per_s", True),
    ("seconds_per_call", False),
)


def _metric(entry) -> tuple[str, float, bool] | None:
    """The comparable metric of one results entry, or None (counters)."""
    if not isinstance(entry, dict):
        return None
    for key, higher_is_better in _METRIC_KEYS:
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return key, float(value), higher_is_better
    return None


def compare_docs(
    baseline: dict,
    fresh: dict,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    require_matching_config: bool = True,
) -> list[str]:
    """Regression messages for every baseline metric the fresh run lost.

    A metric regresses when its better-direction ratio falls below
    ``1 - max_regression``; a baseline metric missing from the fresh
    document counts as a regression (a silently dropped benchmark must
    not pass the gate). Returns an empty list when the gate is green.
    """
    if not 0.0 < max_regression < 1.0:
        raise ConfigurationError(
            f"max_regression must be in (0, 1), got {max_regression}"
        )
    if require_matching_config and baseline.get("config") != fresh.get("config"):
        raise ConfigurationError(
            "baseline and fresh documents ran different configs; their "
            "numbers are not comparable (regenerate with matching sizes "
            "or pass --allow-config-mismatch)"
        )
    regressions: list[str] = []
    for name, entry in baseline.get("results", {}).items():
        base = _metric(entry)
        if base is None:
            continue
        key, old, higher_is_better = base
        fresh_entry = fresh.get("results", {}).get(name)
        new_metric = _metric(fresh_entry)
        if new_metric is None or new_metric[0] != key:
            regressions.append(f"{name}: {key} missing from fresh document")
            continue
        new = new_metric[1]
        ratio = new / old if higher_is_better else old / new
        if ratio < 1.0 - max_regression:
            regressions.append(
                f"{name}: {key} regressed {old:.6g} -> {new:.6g} "
                f"({(1.0 - ratio) * 100.0:.1f}% worse)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="fail when a fresh perf document regresses the baseline",
    )
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="freshly generated perf JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional loss per metric (default 0.3)",
    )
    parser.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="compare even when the two documents ran different sizes",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    regressions = compare_docs(
        baseline,
        fresh,
        max_regression=args.max_regression,
        require_matching_config=not args.allow_config_mismatch,
    )
    if regressions:
        print(f"{len(regressions)} perf regression(s) beyond {args.max_regression:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"perf gate OK: no metric regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
