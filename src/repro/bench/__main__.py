"""CLI entry point: ``python -m repro.bench``.

Without arguments, regenerates every paper figure (tables + CSVs).
With ``--json PATH``, runs the perf harness instead and writes the
machine-readable throughput document (see ``docs/PERFORMANCE.md``):

    python -m repro.bench --json BENCH_perf.json
    python -m repro.bench --json BENCH_perf.json --tiny   # smoke sizes
"""

from __future__ import annotations

import argparse

from repro.bench.perf import TINY_SIZES, section_names, write_perf_json
from repro.bench.runner import run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate paper figures, or run the perf harness.",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="run the perf harness and write its JSON document to PATH",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="perf harness only: tiny sizes (sub-second smoke run)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress table output"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="perf harness only: cProfile each section's warmup call and "
        "print its top-15 cumulative functions",
    )
    parser.add_argument(
        "--sections",
        nargs="+",
        metavar="NAME",
        default=None,
        help="perf harness only: run just these sections "
        f"(valid: {', '.join(section_names())})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="perf harness only: fan sections across N worker processes "
        "(0 = serial)",
    )
    args = parser.parse_args(argv)

    if args.json is not None:
        path = write_perf_json(
            args.json,
            sizes=TINY_SIZES if args.tiny else None,
            quiet=args.quiet,
            profile=args.profile,
            sections=args.sections,
            jobs=args.jobs,
        )
        print(f"Wrote: {path}")
        return 0

    paths = run_all(quiet=args.quiet)
    print("Wrote:")
    for path in paths:
        print(f"  {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
