"""CLI entry point: ``python -m repro.bench`` regenerates every figure."""

from repro.bench.runner import run_all

if __name__ == "__main__":
    paths = run_all()
    print("Wrote:")
    for path in paths:
        print(f"  {path}")
