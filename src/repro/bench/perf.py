"""Machine-readable perf harness: kernel + protocol throughput numbers.

``python -m repro.bench --json BENCH_perf.json`` runs every measurement
and writes one JSON document so the perf trajectory of the hot paths is
tracked from PR to PR (and regressions fail fast in the smoke test,
which runs the same harness on tiny sizes).

The harness is an ordered registry of independent *sections* (each
rebuilds its own inputs from ``rng_seed``): ``--sections NAME ...``
runs a subset, and ``--jobs N`` fans the sections across worker
processes — useful for quick structural runs; committed numbers should
stay serial so sections don't contend for cores.

The document has three sections:

* ``config``  — the sizes the harness ran at;
* ``results`` — per-benchmark throughput (MB/s of *useful* payload — data
  bytes encoded/decoded/updated — trials/s for the Monte-Carlo
  estimators, or simulated ops/s for the event-driven latency runtime),
  plus the raw seconds-per-call;
* ``speedups`` — measured ratios of the batched kernels against inline
  re-implementations of the seed (pre-kernel) code paths: Gauss-Jordan
  per decode + outer-product matmul, plus the exact-availability and
  optimizer paths against the 2^Nbnode subset-enumeration seed, plus
  the process-pool saturation sweep against its serial twin. These are
  the numbers the acceptance criteria quote.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.availability import write_availability
from repro.analysis.exact import exact_read_erc
from repro.analysis.occupancy import occupancy_cache_clear
from repro.analysis.optimizer import (
    ConfigPoint,
    _collect_result,
    _w_vectors,
    optimize_config,
)
from repro.erasure.code import MDSCode
from repro.errors import ConfigurationError, ReproError
from repro.gf.field import GF256
from repro.gf.linalg import inverse, matmul_reference
from repro.parallel import ParallelExecutor
from repro.quorum.trapezoid import (
    TrapezoidQuorum,
    default_shape_for_nbnode,
    shapes_for_nbnode,
)
from repro.sim.montecarlo import mc_read_availability_erc, mc_write_availability

__all__ = [
    "run_perf",
    "write_perf_json",
    "section_names",
    "DEFAULT_SIZES",
    "TINY_SIZES",
]

#: Production-shaped sizes: the acceptance benchmark (k=8, L=64 KiB) plus
#: a stripe batch wide enough to show dispatch amortization.
DEFAULT_SIZES = {
    "n": 12,
    "k": 8,
    "block_length": 1 << 16,  # 64 KiB blocks
    "stripes": 16,
    "small_block_length": 1 << 10,  # dispatch-bound regime for the batch APIs
    "small_stripes": 256,
    "decode_repeats": 32,
    "encode_repeats": 16,
    "mc_trials": 200_000,
    # exact enumeration vs occupancy engine: the paper's Fig-1 trapezoid
    # (Nbnode = 15, 2^15 subsets on the seed path).
    "enum_n": 22,
    "enum_k": 8,
    "enum_repeats": 3,
    # end-to-end optimizer: Nbnode = 13, ~60 (shape, w) points.
    "opt_n": 20,
    "opt_k": 8,
    "opt_p": 0.9,
    "opt_max_h": 2,
    "opt_repeats": 1,
    # event-driven runtime: closed-loop clients under churn (simulated
    # operations per wall-clock second through the full session layer).
    "lat_ops": 600,
    "lat_clients": 8,
    "lat_block_length": 256,
    "lat_repeats": 3,
    # verified read path: the same closed-loop scenario with a 3-node
    # metadata quorum and a byzantine faultload (digest checks + round
    # widening on the hot path); baseline is the fail-stop twin.
    "byz_ops": 400,
    "byz_clients": 8,
    "byz_block_length": 256,
    "byz_metadata_nodes": 3,
    "byz_fraction": 0.25,
    "byz_rate": 0.5,
    "byz_repeats": 3,
    # Byzantine metadata tier: the same closed loop with the hardened
    # 3f+1 signed quorum and f forging metadata liars (record tags +
    # f+1-matching resolution on every read); baseline is the fail-stop
    # unsigned tier with honest metadata.
    "mbyz_ops": 400,
    "mbyz_clients": 8,
    "mbyz_block_length": 256,
    "mbyz_f": 1,
    "mbyz_repeats": 3,
    # sharded runtime: aggregate sim-ops/s through the router front end,
    # four stripe families contending on per-node service queues.
    "shard_count": 4,
    "shard_ops": 800,
    "shard_clients": 16,
    "shard_block_length": 64,
    "shard_service": 0.0005,
    "shard_repeats": 2,
    # wall-clock backend: real operations per real second through the
    # AsyncCoordinator over the in-process transport (wire codec + event
    # loop included, sockets excluded).
    "wc_ops": 200,
    "wc_clients": 4,
    "wc_block_length": 64,
    "wc_repeats": 2,
    # event core: the vectorized session layer against the frozen
    # per-object reference loop — one pinned quorum fan-out resubmitted
    # by ec_clients concurrent closed-loop sessions, the regime where
    # per-message heap/timer bookkeeping dominates. The reference runs
    # ec_ref_ops rounds (it is ~10x slower); rates are compared.
    "ec_ops": 100_000,
    "ec_ref_ops": 10_000,
    "ec_nodes": 24,
    "ec_fanout": 24,
    "ec_need": 13,
    "ec_clients": 256,
    "ec_repeats": 1,
    # process-pool fan-out: the saturation sweep serial vs jobs=par_jobs
    # (balanced client counts so the points cost about the same; the
    # pool spawn overhead is inside the clock, honestly).
    "par_ops": 1200,
    "par_clients": (12, 14, 16, 18),
    "par_block_length": 64,
    "par_service": 0.0005,
    "par_jobs": 4,
    "par_repeats": 1,
}

#: Tiny sizes for the tier-1-adjacent smoke target (< 1 s total).
TINY_SIZES = {
    "n": 6,
    "k": 4,
    "block_length": 256,
    "stripes": 3,
    "small_block_length": 64,
    "small_stripes": 8,
    "decode_repeats": 3,
    "encode_repeats": 3,
    "mc_trials": 2_000,
    "enum_n": 12,
    "enum_k": 4,
    "enum_repeats": 2,
    "opt_n": 10,
    "opt_k": 6,
    "opt_p": 0.8,
    "opt_max_h": 2,
    "opt_repeats": 1,
    "lat_ops": 60,
    "lat_clients": 4,
    "lat_block_length": 32,
    "lat_repeats": 2,
    "byz_ops": 40,
    "byz_clients": 4,
    "byz_block_length": 32,
    "byz_metadata_nodes": 3,
    "byz_fraction": 0.25,
    "byz_rate": 0.5,
    "byz_repeats": 1,
    "mbyz_ops": 40,
    "mbyz_clients": 4,
    "mbyz_block_length": 32,
    "mbyz_f": 1,
    "mbyz_repeats": 1,
    "shard_count": 4,
    "shard_ops": 80,
    "shard_clients": 8,
    "shard_block_length": 32,
    "shard_service": 0.0005,
    "shard_repeats": 1,
    "wc_ops": 24,
    "wc_clients": 2,
    "wc_block_length": 32,
    "wc_repeats": 1,
    "ec_ops": 2_000,
    "ec_ref_ops": 400,
    "ec_nodes": 12,
    "ec_fanout": 12,
    "ec_need": 7,
    "ec_clients": 64,
    "ec_repeats": 1,
    # tiny parallel_scaling stays serial-vs-jobs=2 so the smoke run
    # exercises the pool without paying four interpreter spawns.
    "par_ops": 60,
    "par_clients": (2, 3),
    "par_block_length": 32,
    "par_service": 0.0005,
    "par_jobs": 2,
    "par_repeats": 1,
}


#: ``--profile`` switch: when True, every section's warmup call runs
#: under cProfile and its top-15 cumulative functions print (the timed
#: repeats themselves stay unprofiled so the numbers are clean).
_PROFILE_SECTIONS = False


def _time_call(fn, repeats: int, label: str = "") -> float:
    """Best-of-runs seconds per call (one warmup call outside the clock).

    With :data:`_PROFILE_SECTIONS` set (the ``--profile`` flag), the
    warmup call is wrapped in ``cProfile`` and the section's top-15
    cumulative functions print before the timed repeats run.
    """
    if _PROFILE_SECTIONS:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        fn()
        prof.disable()
        print(f"\n=== profile: {label or '<unnamed section>'} ===")
        pstats.Stats(prof).sort_stats("cumulative").print_stats(15)
    else:
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(seconds: float, payload_bytes: int) -> dict:
    return {
        "seconds_per_call": seconds,
        "payload_bytes": payload_bytes,
        "mb_per_s": payload_bytes / seconds / 1e6 if seconds > 0 else None,
    }


def _seed_encode(code: MDSCode, data: np.ndarray) -> np.ndarray:
    """The seed (pre-kernel) encode: outer-product reference matmul."""
    stripe = np.empty((code.n, data.shape[1]), dtype=code.field.dtype)
    stripe[: code.k] = data
    if code.m:
        stripe[code.k :] = matmul_reference(code.field, code.parity_matrix, data)
    return stripe


def _seed_decode(code: MDSCode, indices: list[int], frag: np.ndarray) -> np.ndarray:
    """The seed decode: Gauss-Jordan inversion on every call + reference matmul."""
    sub = code.generator[indices]
    return matmul_reference(code.field, inverse(code.field, sub), frag)


def _seed_optimize(n: int, k: int, p: float, max_h: int):
    """The seed (pre-occupancy) optimizer: one 2^Nbnode subset enumeration
    per (shape, w) candidate, exactly the old ``optimize_config`` loop."""
    points = []
    for shape in shapes_for_nbnode(n - k + 1, max_h=max_h):
        for w in _w_vectors(shape, 512):
            quorum = TrapezoidQuorum(shape, w)
            points.append(
                ConfigPoint(
                    shape=shape,
                    w=w,
                    write=float(write_availability(quorum, p)),
                    read=float(exact_read_erc(quorum, n, k, p, method="enumeration")),
                )
            )
    return _collect_result(points)


def _code_and_batch(cfg: dict, rng) -> tuple[MDSCode, np.ndarray]:
    """The shared (code, stripe batch) inputs a kernel section starts from."""
    code = MDSCode(cfg["n"], cfg["k"])
    batch = (
        rng.integers(
            0, 256, size=(cfg["stripes"], cfg["k"], cfg["block_length"]),
            dtype=np.int64,
        )
        .astype(np.uint8)
    )
    return code, batch


# --------------------------------------------------------------------- #
# sections: each is independent (own RNG from rng_seed, own inputs) and
# returns {"results": {...}, "speedups": {...}} — the unit of --sections
# filtering and of the --jobs process fan-out.
# --------------------------------------------------------------------- #


def _section_encode(cfg: dict, rng_seed: int) -> dict:
    rng = np.random.default_rng(rng_seed)
    code, batch = _code_and_batch(cfg, rng)
    data = batch[0]
    data_bytes = cfg["k"] * cfg["block_length"]
    stripes = cfg["stripes"]
    enc_reps = cfg["encode_repeats"]
    results: dict[str, dict] = {}

    t_seed_enc = _time_call(lambda: _seed_encode(code, data), enc_reps, "encode_seed")
    results["encode_seed"] = _entry(t_seed_enc, data_bytes)
    t_enc = _time_call(lambda: code.encode(data), enc_reps, "encode")
    results["encode"] = _entry(t_enc, data_bytes)
    t_enc_batch = _time_call(
        lambda: code.encode_batch(batch), max(1, enc_reps // 4), "encode_batch"
    )
    results["encode_batch"] = _entry(t_enc_batch, stripes * data_bytes)

    # small-block batch (the dispatch-bound regime fusion targets)
    s_len = cfg["small_block_length"]
    s_count = cfg["small_stripes"]
    small = (
        rng.integers(0, 256, size=(s_count, cfg["k"], s_len), dtype=np.int64)
        .astype(np.uint8)
    )
    small_bytes = s_count * cfg["k"] * s_len

    def encode_loop() -> None:
        for stripe_data in small:
            code.encode(stripe_data)

    t_small_loop = _time_call(encode_loop, max(1, enc_reps // 4), "encode_small_loop")
    results["encode_small_loop"] = _entry(t_small_loop, small_bytes)
    t_small_batch = _time_call(
        lambda: code.encode_batch(small), max(1, enc_reps // 4), "encode_small_batch"
    )
    results["encode_small_batch"] = _entry(t_small_batch, small_bytes)

    return {
        "results": results,
        "speedups": {
            "encode_vs_seed": t_seed_enc / t_enc,
            "encode_batch_vs_seed": (t_seed_enc * stripes) / t_enc_batch,
            "encode_small_batch_vs_loop": t_small_loop / t_small_batch,
        },
    }


def _section_decode(cfg: dict, rng_seed: int) -> dict:
    rng = np.random.default_rng(rng_seed)
    code, batch = _code_and_batch(cfg, rng)
    data = batch[0]
    n = cfg["n"]
    data_bytes = cfg["k"] * cfg["block_length"]
    stripes = cfg["stripes"]
    dec_reps = cfg["decode_repeats"]
    results: dict[str, dict] = {}

    # repeated survivor set: the acceptance benchmark
    stripe = code.encode(data)
    lost = [(3 * t) % n for t in range(code.m)] if code.m else []
    survivors = [i for i in range(n) if i not in lost][: cfg["k"]]
    frag = np.ascontiguousarray(stripe[survivors])
    t_seed_dec = _time_call(
        lambda: _seed_decode(code, survivors, frag), dec_reps, "decode_seed"
    )
    results["decode_seed"] = _entry(t_seed_dec, data_bytes)
    code.clear_plan_cache()
    t_dec = _time_call(
        lambda: code.decode(survivors, frag), dec_reps, "decode_repeated"
    )
    results["decode_repeated"] = _entry(t_dec, data_bytes)
    stripe_batch = code.encode_batch(batch)
    frag_batch = np.ascontiguousarray(stripe_batch[:, survivors])
    t_dec_batch = _time_call(
        lambda: code.decode_batch(survivors, frag_batch),
        max(1, dec_reps // 4),
        "decode_batch",
    )
    results["decode_batch"] = _entry(t_dec_batch, stripes * data_bytes)
    results["decode_plan_cache"] = code.plan_cache_info()

    return {
        "results": results,
        "speedups": {
            "decode_repeated_vs_seed": t_seed_dec / t_dec,
            "decode_batch_vs_seed": (t_seed_dec * stripes) / t_dec_batch,
        },
    }


def _section_update(cfg: dict, rng_seed: int) -> dict:
    rng = np.random.default_rng(rng_seed)
    code, batch = _code_and_batch(cfg, rng)
    length = cfg["block_length"]
    stripe = code.encode(batch[0])
    delta = rng.integers(0, 256, size=length, dtype=np.int64).astype(np.uint8)
    parity = stripe[cfg["k"]].copy() if code.m else np.zeros(length, dtype=np.uint8)

    def update() -> None:
        for j in range(code.k, code.n):
            code.apply_parity_delta(parity, j, 0, delta)

    t_upd = _time_call(update, cfg["encode_repeats"], "update_deltas")
    return {
        "results": {"update_deltas": _entry(t_upd, max(1, code.m) * length)},
        "speedups": {},
    }


def _section_mc(cfg: dict, rng_seed: int) -> dict:
    n, k = cfg["n"], cfg["k"]
    quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(n - k + 1))
    trials = cfg["mc_trials"]
    results: dict[str, dict] = {}
    t_mc_w = _time_call(
        lambda: mc_write_availability(quorum, 0.9, trials=trials, rng=123),
        3,
        "mc_write",
    )
    results["mc_write"] = {
        "seconds_per_call": t_mc_w,
        "trials": trials,
        "trials_per_s": trials / t_mc_w,
    }
    t_mc_r = _time_call(
        lambda: mc_read_availability_erc(quorum, n, k, 0.9, trials=trials, rng=123),
        3,
        "mc_read_erc",
    )
    results["mc_read_erc"] = {
        "seconds_per_call": t_mc_r,
        "trials": trials,
        "trials_per_s": trials / t_mc_r,
    }
    return {"results": results, "speedups": {}}


def _section_exact(cfg: dict, rng_seed: int) -> dict:
    e_n, e_k = cfg["enum_n"], cfg["enum_k"]
    e_quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(e_n - e_k + 1))
    e_reps = cfg["enum_repeats"]
    nbnode = e_quorum.shape.total_nodes
    results: dict[str, dict] = {}
    t_enum_seed = _time_call(
        lambda: exact_read_erc(e_quorum, e_n, e_k, 0.9, method="enumeration"),
        e_reps,
        "exact_enum_seed",
    )
    results["exact_enum_seed"] = {
        "seconds_per_call": t_enum_seed,
        "nbnode": nbnode,
    }

    def exact_occupancy_cold() -> None:
        occupancy_cache_clear()
        exact_read_erc(e_quorum, e_n, e_k, 0.9)

    t_enum_occ = _time_call(exact_occupancy_cold, e_reps, "exact_enum_occupancy")
    results["exact_enum_occupancy"] = {
        "seconds_per_call": t_enum_occ,
        "nbnode": nbnode,
    }
    # Warm tables: the sweep/optimizer regime, where only the p fold runs.
    t_enum_warm = _time_call(
        lambda: exact_read_erc(e_quorum, e_n, e_k, 0.9),
        e_reps,
        "exact_enum_occupancy_warm",
    )
    results["exact_enum_occupancy_warm"] = {
        "seconds_per_call": t_enum_warm,
        "nbnode": nbnode,
    }
    return {
        "results": results,
        "speedups": {"exact_enum_vs_seed": t_enum_seed / t_enum_occ},
    }


def _section_optimizer(cfg: dict, rng_seed: int) -> dict:
    o_n, o_k = cfg["opt_n"], cfg["opt_k"]
    o_p, o_max_h = cfg["opt_p"], cfg["opt_max_h"]
    o_reps = cfg["opt_repeats"]
    results: dict[str, dict] = {}
    t_opt_seed = _time_call(
        lambda: _seed_optimize(o_n, o_k, o_p, o_max_h), o_reps, "optimizer_seed"
    )
    evaluated = optimize_config(o_n, o_k, o_p, max_h=o_max_h).evaluated
    results["optimizer_seed"] = {
        "seconds_per_call": t_opt_seed,
        "evaluated": evaluated,
    }

    def optimize_cold() -> None:
        occupancy_cache_clear()
        optimize_config(o_n, o_k, o_p, max_h=o_max_h)

    t_opt = _time_call(optimize_cold, o_reps, "optimizer")
    results["optimizer"] = {
        "seconds_per_call": t_opt,
        "evaluated": evaluated,
    }
    return {
        "results": results,
        "speedups": {"optimizer_vs_seed": t_opt_seed / t_opt},
    }


def _section_latency_sim(cfg: dict, rng_seed: int) -> dict:
    lat_ops = cfg["lat_ops"]

    def latency_sim() -> None:
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=lat_ops, block_length=cfg["lat_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["lat_clients"],
                think_time=0.05,
                horizon=60.0,  # generous: the op tape ends the run first
                faultload=FaultloadSpec(kind="churn", mtbf=5.0, mttr=1.0),
            ),
            seed=rng_seed,
        )
        ScenarioRunner(spec).run()

    t_lat = _time_call(latency_sim, cfg["lat_repeats"], "latency_sim")
    return {
        "results": {
            "latency_sim": {
                "seconds_per_call": t_lat,
                "ops": lat_ops,
                "ops_per_s": lat_ops / t_lat,
            }
        },
        "speedups": {},
    }


def _section_byzantine(cfg: dict, rng_seed: int) -> dict:
    byz_ops = cfg["byz_ops"]

    def byzantine_sim(verified: bool):
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            MetadataSpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            metadata=(
                MetadataSpec(nodes=cfg["byz_metadata_nodes"])
                if verified
                else None
            ),
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=byz_ops, block_length=cfg["byz_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["byz_clients"],
                think_time=0.05,
                horizon=60.0,
                faultload=FaultloadSpec(
                    kind="byzantine",
                    byzantine_fraction=cfg["byz_fraction"],
                    corruption_mode="payload",
                    corruption_rate=cfg["byz_rate"],
                ),
            ),
            seed=rng_seed,
        )
        return ScenarioRunner(spec).run()

    byz_reps = cfg["byz_repeats"]
    t_byz = _time_call(lambda: byzantine_sim(True), byz_reps, "byzantine_overhead")
    t_byz_base = _time_call(
        lambda: byzantine_sim(False), byz_reps, "byzantine_baseline"
    )
    return {
        "results": {
            "byzantine_overhead": {
                "seconds_per_call": t_byz,
                "ops": byz_ops,
                "ops_per_s": byz_ops / t_byz,
                # informational: the fail-stop twin of the same run, so
                # the cost of digest checks + the metadata quorum is
                # read off directly.
                "baseline_seconds_per_call": t_byz_base,
                "overhead_ratio": t_byz / t_byz_base if t_byz_base > 0 else None,
            }
        },
        "speedups": {},
    }


def _section_metadata_byzantine(cfg: dict, rng_seed: int) -> dict:
    mbyz_ops = cfg["mbyz_ops"]

    def metadata_byzantine_sim(hardened: bool):
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            MetadataSpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        f = cfg["mbyz_f"]
        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            metadata=(
                MetadataSpec(nodes=3 * f + 1, f=f)
                if hardened
                else MetadataSpec(nodes=cfg["byz_metadata_nodes"])
            ),
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=mbyz_ops, block_length=cfg["mbyz_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["mbyz_clients"],
                think_time=0.05,
                horizon=60.0,
                faultload=FaultloadSpec(
                    kind="byzantine",
                    byzantine_fraction=0.0,
                    metadata_liars=f if hardened else 0,
                    metadata_mode="forge",
                ),
            ),
            seed=rng_seed,
        )
        return ScenarioRunner(spec).run()

    mbyz_reps = cfg["mbyz_repeats"]
    t_mbyz = _time_call(
        lambda: metadata_byzantine_sim(True), mbyz_reps, "metadata_byzantine"
    )
    t_mbyz_base = _time_call(
        lambda: metadata_byzantine_sim(False), mbyz_reps, "metadata_baseline"
    )
    return {
        "results": {
            "metadata_byzantine": {
                "seconds_per_call": t_mbyz,
                "ops": mbyz_ops,
                "ops_per_s": mbyz_ops / t_mbyz,
                "f": cfg["mbyz_f"],
                # informational: the fail-stop unsigned tier on honest
                # metadata, so the cost of record tags + f+1-matching
                # reads under f live forgers is read off directly.
                "baseline_seconds_per_call": t_mbyz_base,
                "overhead_ratio": (
                    t_mbyz / t_mbyz_base if t_mbyz_base > 0 else None
                ),
            }
        },
        "speedups": {},
    }


def _saturation_spec(cfg: dict, rng_seed: int, prefix: str, clients: tuple):
    """The sharded saturation spec the throughput sections share."""
    from repro.api import (
        LatencySpec,
        ScenarioSpec,
        ServiceTimeSpec,
        ShardingSpec,
        SystemSpec,
        WorkloadSpec,
    )

    return SystemSpec.trapezoid(
        9, 6, 2, 1, 1, 2,
        latency=LatencySpec(kind="lognormal"),
        sharding=ShardingSpec(shards=cfg["shard_count"]),
        service=ServiceTimeSpec(kind="fixed", time=cfg[f"{prefix}_service"]),
        workload=WorkloadSpec(
            num_ops=cfg[f"{prefix}_ops"],
            block_length=cfg[f"{prefix}_block_length"],
        ),
        scenario=ScenarioSpec(
            kind="saturation",
            client_counts=clients,
            horizon=120.0,
        ),
        seed=rng_seed,
    )


def _section_sharded_throughput(cfg: dict, rng_seed: int) -> dict:
    from repro.api import ScenarioRunner

    shard_ops = cfg["shard_ops"]
    spec = _saturation_spec(
        cfg, rng_seed, "shard", (cfg["shard_clients"],)
    )
    t_shard = _time_call(
        lambda: ScenarioRunner(spec).run(),
        cfg["shard_repeats"],
        "sharded_throughput",
    )
    return {
        "results": {
            "sharded_throughput": {
                "seconds_per_call": t_shard,
                "ops": shard_ops,
                "shards": cfg["shard_count"],
                "clients": cfg["shard_clients"],
                "ops_per_s": shard_ops / t_shard,
            }
        },
        "speedups": {},
    }


def _section_wallclock(cfg: dict, rng_seed: int) -> dict:
    wc_ops = cfg["wc_ops"]

    def wallclock_inproc() -> None:
        from repro.api import (
            ScenarioSpec,
            SystemSpec,
            TransportSpec,
            WorkloadSpec,
        )
        from repro.services import run_wallclock

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            workload=WorkloadSpec(
                num_ops=wc_ops, block_length=cfg["wc_block_length"]
            ),
            transport=TransportSpec(kind="inproc"),
            scenario=ScenarioSpec(
                kind="wallclock",
                clients=cfg["wc_clients"],
                think_time=0.0,
                horizon=300.0,
            ),
            seed=rng_seed,
        )
        run_wallclock(spec)

    t_wc = _time_call(wallclock_inproc, cfg["wc_repeats"], "wallclock_inproc")
    return {
        "results": {
            "wallclock_inproc": {
                "seconds_per_call": t_wc,
                "ops": wc_ops,
                "clients": cfg["wc_clients"],
                "ops_per_s": wc_ops / t_wc,
            }
        },
        "speedups": {},
    }


def _section_event_core(cfg: dict, rng_seed: int) -> dict:
    from repro.runtime.event import EventCoordinator
    from repro.runtime.reference import ReferenceEventCoordinator

    ec_events: dict[str, int] = {}

    def event_core_run(coordinator_cls, ops: int) -> int:
        from repro.cluster.cluster import Cluster
        from repro.cluster.events import Simulator
        from repro.cluster.network import FixedLatency, Network
        from repro.runtime.rounds import Request, RetryPolicy, Round

        nodes = cfg["ec_nodes"]
        fanout = cfg["ec_fanout"]
        clients = min(cfg["ec_clients"], ops)
        sim = Simulator()
        cluster = Cluster(nodes, network=Network(latency=FixedLatency(0.001)))
        for i in range(nodes):
            cluster.nodes[i].put_data(i, np.zeros(8, dtype=np.uint8), 1)
        coordinator = coordinator_cls(
            cluster, sim, rng=1, policy=RetryPolicy(timeout=0.05, retries=1)
        )
        # One pinned fan-out, reused every round: the section measures
        # the session layer (scheduling, delivery, quorum bookkeeping),
        # not request-object construction.
        requests = [
            Request(i % nodes, "data_version", (i % nodes,))
            for i in range(fanout)
        ]
        done = [0]

        def plan():
            outcome = yield Round(
                requests, need=cfg["ec_need"], kind="version-query"
            )
            return outcome

        def resubmit(_result) -> None:
            done[0] += 1
            if done[0] + clients <= ops:
                coordinator.submit(plan(), resubmit)

        for _ in range(clients):
            coordinator.submit(plan(), resubmit)
        while sim.step():
            pass
        return sim.processed

    ec_ops = cfg["ec_ops"]
    ec_ref_ops = cfg["ec_ref_ops"]
    t_ec = _time_call(
        lambda: ec_events.__setitem__(
            "vectorized", event_core_run(EventCoordinator, ec_ops)
        ),
        cfg["ec_repeats"],
        "event_core",
    )
    t_ec_ref = _time_call(
        lambda: ec_events.__setitem__(
            "reference", event_core_run(ReferenceEventCoordinator, ec_ref_ops)
        ),
        cfg["ec_repeats"],
        "event_core_reference",
    )
    return {
        "results": {
            "event_core": {
                "seconds_per_call": t_ec,
                "ops": ec_ops,
                "fanout": cfg["ec_fanout"],
                "need": cfg["ec_need"],
                "clients": min(cfg["ec_clients"], ec_ops),
                "events_per_op": ec_events["vectorized"] / ec_ops,
                "ops_per_s": ec_ops / t_ec,
            },
            "event_core_reference": {
                "seconds_per_call": t_ec_ref,
                "ops": ec_ref_ops,
                "fanout": cfg["ec_fanout"],
                "need": cfg["ec_need"],
                "clients": min(cfg["ec_clients"], ec_ref_ops),
                "events_per_op": ec_events["reference"] / ec_ref_ops,
                "ops_per_s": ec_ref_ops / t_ec_ref,
            },
        },
        "speedups": {
            "event_core_vs_reference": (ec_ops / t_ec) / (ec_ref_ops / t_ec_ref),
        },
    }


def _section_parallel_scaling(cfg: dict, rng_seed: int) -> dict:
    """Serial vs process-pool saturation sweep, byte-identity asserted.

    The timed parallel runs share one warm :class:`ParallelExecutor`:
    worker spawn + interpreter import is paid by the warmup call, so
    the ratio is the steady-state scaling of the fan-out itself, not
    the one-time pool cost. ``host_cpus`` is recorded so the compare
    gate can enforce the ratio only where the cores to realize it
    exist (a 1-CPU host cannot beat serial; its entry is
    informational).
    """
    from repro.api import ScenarioRunner
    from repro.parallel import ParallelExecutor

    jobs = cfg["par_jobs"]
    clients = tuple(cfg["par_clients"])
    spec = _saturation_spec(cfg, rng_seed, "par", clients)
    outputs: dict[str, str] = {}
    reps = cfg["par_repeats"]
    t_serial = _time_call(
        lambda: outputs.__setitem__("serial", ScenarioRunner(spec).run().to_json()),
        reps,
        "parallel_scaling_serial",
    )
    with ParallelExecutor(jobs) as pool:
        t_par = _time_call(
            lambda: outputs.__setitem__(
                "parallel",
                ScenarioRunner(spec, executor=pool).run().to_json(),
            ),
            reps,
            "parallel_scaling",
        )
    if outputs["serial"] != outputs["parallel"]:
        raise ReproError(
            "parallel_scaling: jobs="
            f"{jobs} result diverged from the serial run — the "
            "determinism contract is broken"
        )
    return {
        "results": {
            "parallel_scaling": {
                "seconds_per_call": t_par,
                "serial_seconds_per_call": t_serial,
                "jobs": jobs,
                "host_cpus": os.cpu_count() or 1,
                "points": len(clients),
                "ops": cfg["par_ops"],
                "speedup": t_serial / t_par if t_par > 0 else None,
                "byte_identical": True,
                "warm_pool": True,
            }
        },
        "speedups": {
            "parallel_vs_serial_saturation": (
                t_serial / t_par if t_par > 0 else 0.0
            ),
        },
    }


#: Ordered section registry: names are the --sections vocabulary and the
#: fan-out unit of --jobs; results assemble in this order regardless of
#: which worker finishes first.
_SECTIONS = {
    "encode": _section_encode,
    "decode": _section_decode,
    "update": _section_update,
    "mc": _section_mc,
    "exact": _section_exact,
    "optimizer": _section_optimizer,
    "latency_sim": _section_latency_sim,
    "byzantine": _section_byzantine,
    "metadata_byzantine": _section_metadata_byzantine,
    "sharded_throughput": _section_sharded_throughput,
    "wallclock": _section_wallclock,
    "event_core": _section_event_core,
    "parallel_scaling": _section_parallel_scaling,
}

#: Sections that must run in the parent process: parallel_scaling opens
#: its own pool, and nesting pools inside pool workers is not supported.
_INLINE_ONLY = frozenset({"parallel_scaling"})


def section_names() -> tuple[str, ...]:
    """The valid --sections names, in document order."""
    return tuple(_SECTIONS)


def _select_sections(sections) -> list[str]:
    """Validate a --sections filter; unknown names fail with the list."""
    if sections is None:
        return list(_SECTIONS)
    requested = list(sections)
    unknown = [name for name in requested if name not in _SECTIONS]
    if unknown:
        raise ConfigurationError(
            f"unknown perf sections: {sorted(set(unknown))} "
            f"(valid: {list(_SECTIONS)})"
        )
    # Document order, regardless of how the filter was spelled.
    chosen = set(requested)
    return [name for name in _SECTIONS if name in chosen]


def _section_task(payload: dict) -> dict:
    """One section, as a process-pool task (--jobs fan-out unit)."""
    return _SECTIONS[payload["name"]](payload["cfg"], payload["rng_seed"])


def run_perf(
    sizes: dict | None = None,
    rng_seed: int = 0,
    profile: bool = False,
    sections: list | None = None,
    jobs: int = 0,
) -> dict:
    """Run the selected benchmarks; returns the JSON-ready document.

    ``sections`` filters the registry (unknown names raise with the
    valid list); ``jobs`` fans the sections across worker processes
    (``profile=True`` forces serial — the cProfile switch is per
    process). ``profile=True`` (the CLI ``--profile`` flag) prints each
    section's top-15 cumulative-time functions from a cProfile of its
    warmup call.
    """
    global _PROFILE_SECTIONS
    _PROFILE_SECTIONS = profile
    try:
        return _run_perf(
            sizes, rng_seed, sections=sections, jobs=0 if profile else jobs
        )
    finally:
        _PROFILE_SECTIONS = False


def _run_perf(
    sizes: dict | None,
    rng_seed: int,
    sections: list | None = None,
    jobs: int = 0,
) -> dict:
    cfg = dict(DEFAULT_SIZES if sizes is None else sizes)
    names = _select_sections(sections)
    outs: dict[str, dict] = {}
    pooled = [name for name in names if name not in _INLINE_ONLY]
    inline = [name for name in names if name in _INLINE_ONLY]
    with ParallelExecutor(jobs) as pool:
        payloads = [
            {"name": name, "cfg": cfg, "rng_seed": rng_seed} for name in pooled
        ]
        for name, out in zip(pooled, pool.map(_section_task, payloads)):
            outs[name] = out
    for name in inline:
        outs[name] = _SECTIONS[name](cfg, rng_seed)
    results: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    for name in names:
        results.update(outs[name]["results"])
        speedups.update(outs[name]["speedups"])
    return {
        "schema": "repro-bench-perf/1",
        "config": cfg,
        "sections": names,
        "results": results,
        "speedups": speedups,
    }


def write_perf_json(
    path: str | Path,
    sizes: dict | None = None,
    quiet: bool = False,
    profile: bool = False,
    sections: list | None = None,
    jobs: int = 0,
) -> Path:
    """Run the harness and write ``path``; returns the path."""
    doc = run_perf(sizes=sizes, profile=profile, sections=sections, jobs=jobs)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if not quiet:
        for name, entry in doc["results"].items():
            mbs = entry.get("mb_per_s")
            tps = entry.get("trials_per_s")
            ops = entry.get("ops_per_s")
            if mbs is not None:
                print(f"{name:24s} {mbs:10.1f} MB/s")
            elif tps is not None:
                print(f"{name:24s} {tps:10.0f} trials/s")
            elif ops is not None:
                print(f"{name:24s} {ops:10.0f} ops/s")
        for name, ratio in doc["speedups"].items():
            print(f"{name:28s} {ratio:6.1f}x")
    return path
