"""Machine-readable perf harness: kernel + protocol throughput numbers.

``python -m repro.bench --json BENCH_perf.json`` runs every measurement
and writes one JSON document so the perf trajectory of the hot paths is
tracked from PR to PR (and regressions fail fast in the smoke test,
which runs the same harness on tiny sizes).

The document has three sections:

* ``config``  — the sizes the harness ran at;
* ``results`` — per-benchmark throughput (MB/s of *useful* payload — data
  bytes encoded/decoded/updated — trials/s for the Monte-Carlo
  estimators, or simulated ops/s for the event-driven latency runtime),
  plus the raw seconds-per-call;
* ``speedups`` — measured ratios of the batched kernels against inline
  re-implementations of the seed (pre-kernel) code paths: Gauss-Jordan
  per decode + outer-product matmul, plus the exact-availability and
  optimizer paths against the 2^Nbnode subset-enumeration seed. These
  are the numbers the acceptance criteria quote.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.availability import write_availability
from repro.analysis.exact import exact_read_erc
from repro.analysis.occupancy import occupancy_cache_clear
from repro.analysis.optimizer import (
    ConfigPoint,
    _collect_result,
    _w_vectors,
    optimize_config,
)
from repro.erasure.code import MDSCode
from repro.gf.field import GF256
from repro.gf.linalg import inverse, matmul_reference
from repro.quorum.trapezoid import (
    TrapezoidQuorum,
    default_shape_for_nbnode,
    shapes_for_nbnode,
)
from repro.sim.montecarlo import mc_read_availability_erc, mc_write_availability

__all__ = ["run_perf", "write_perf_json", "DEFAULT_SIZES", "TINY_SIZES"]

#: Production-shaped sizes: the acceptance benchmark (k=8, L=64 KiB) plus
#: a stripe batch wide enough to show dispatch amortization.
DEFAULT_SIZES = {
    "n": 12,
    "k": 8,
    "block_length": 1 << 16,  # 64 KiB blocks
    "stripes": 16,
    "small_block_length": 1 << 10,  # dispatch-bound regime for the batch APIs
    "small_stripes": 256,
    "decode_repeats": 32,
    "encode_repeats": 16,
    "mc_trials": 200_000,
    # exact enumeration vs occupancy engine: the paper's Fig-1 trapezoid
    # (Nbnode = 15, 2^15 subsets on the seed path).
    "enum_n": 22,
    "enum_k": 8,
    "enum_repeats": 3,
    # end-to-end optimizer: Nbnode = 13, ~60 (shape, w) points.
    "opt_n": 20,
    "opt_k": 8,
    "opt_p": 0.9,
    "opt_max_h": 2,
    "opt_repeats": 1,
    # event-driven runtime: closed-loop clients under churn (simulated
    # operations per wall-clock second through the full session layer).
    "lat_ops": 600,
    "lat_clients": 8,
    "lat_block_length": 256,
    "lat_repeats": 3,
    # verified read path: the same closed-loop scenario with a 3-node
    # metadata quorum and a byzantine faultload (digest checks + round
    # widening on the hot path); baseline is the fail-stop twin.
    "byz_ops": 400,
    "byz_clients": 8,
    "byz_block_length": 256,
    "byz_metadata_nodes": 3,
    "byz_fraction": 0.25,
    "byz_rate": 0.5,
    "byz_repeats": 3,
    # Byzantine metadata tier: the same closed loop with the hardened
    # 3f+1 signed quorum and f forging metadata liars (record tags +
    # f+1-matching resolution on every read); baseline is the fail-stop
    # unsigned tier with honest metadata.
    "mbyz_ops": 400,
    "mbyz_clients": 8,
    "mbyz_block_length": 256,
    "mbyz_f": 1,
    "mbyz_repeats": 3,
    # sharded runtime: aggregate sim-ops/s through the router front end,
    # four stripe families contending on per-node service queues.
    "shard_count": 4,
    "shard_ops": 800,
    "shard_clients": 16,
    "shard_block_length": 64,
    "shard_service": 0.0005,
    "shard_repeats": 2,
    # wall-clock backend: real operations per real second through the
    # AsyncCoordinator over the in-process transport (wire codec + event
    # loop included, sockets excluded).
    "wc_ops": 200,
    "wc_clients": 4,
    "wc_block_length": 64,
    "wc_repeats": 2,
    # event core: the vectorized session layer against the frozen
    # per-object reference loop — one pinned quorum fan-out resubmitted
    # by ec_clients concurrent closed-loop sessions, the regime where
    # per-message heap/timer bookkeeping dominates. The reference runs
    # ec_ref_ops rounds (it is ~10x slower); rates are compared.
    "ec_ops": 100_000,
    "ec_ref_ops": 10_000,
    "ec_nodes": 24,
    "ec_fanout": 24,
    "ec_need": 13,
    "ec_clients": 256,
    "ec_repeats": 1,
}

#: Tiny sizes for the tier-1-adjacent smoke target (< 1 s total).
TINY_SIZES = {
    "n": 6,
    "k": 4,
    "block_length": 256,
    "stripes": 3,
    "small_block_length": 64,
    "small_stripes": 8,
    "decode_repeats": 3,
    "encode_repeats": 3,
    "mc_trials": 2_000,
    "enum_n": 12,
    "enum_k": 4,
    "enum_repeats": 2,
    "opt_n": 10,
    "opt_k": 6,
    "opt_p": 0.8,
    "opt_max_h": 2,
    "opt_repeats": 1,
    "lat_ops": 60,
    "lat_clients": 4,
    "lat_block_length": 32,
    "lat_repeats": 2,
    "byz_ops": 40,
    "byz_clients": 4,
    "byz_block_length": 32,
    "byz_metadata_nodes": 3,
    "byz_fraction": 0.25,
    "byz_rate": 0.5,
    "byz_repeats": 1,
    "mbyz_ops": 40,
    "mbyz_clients": 4,
    "mbyz_block_length": 32,
    "mbyz_f": 1,
    "mbyz_repeats": 1,
    "shard_count": 4,
    "shard_ops": 80,
    "shard_clients": 8,
    "shard_block_length": 32,
    "shard_service": 0.0005,
    "shard_repeats": 1,
    "wc_ops": 24,
    "wc_clients": 2,
    "wc_block_length": 32,
    "wc_repeats": 1,
    "ec_ops": 2_000,
    "ec_ref_ops": 400,
    "ec_nodes": 12,
    "ec_fanout": 12,
    "ec_need": 7,
    "ec_clients": 64,
    "ec_repeats": 1,
}


#: ``--profile`` switch: when True, every section's warmup call runs
#: under cProfile and its top-15 cumulative functions print (the timed
#: repeats themselves stay unprofiled so the numbers are clean).
_PROFILE_SECTIONS = False


def _time_call(fn, repeats: int, label: str = "") -> float:
    """Best-of-runs seconds per call (one warmup call outside the clock).

    With :data:`_PROFILE_SECTIONS` set (the ``--profile`` flag), the
    warmup call is wrapped in ``cProfile`` and the section's top-15
    cumulative functions print before the timed repeats run.
    """
    if _PROFILE_SECTIONS:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        fn()
        prof.disable()
        print(f"\n=== profile: {label or '<unnamed section>'} ===")
        pstats.Stats(prof).sort_stats("cumulative").print_stats(15)
    else:
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(seconds: float, payload_bytes: int) -> dict:
    return {
        "seconds_per_call": seconds,
        "payload_bytes": payload_bytes,
        "mb_per_s": payload_bytes / seconds / 1e6 if seconds > 0 else None,
    }


def _seed_encode(code: MDSCode, data: np.ndarray) -> np.ndarray:
    """The seed (pre-kernel) encode: outer-product reference matmul."""
    stripe = np.empty((code.n, data.shape[1]), dtype=code.field.dtype)
    stripe[: code.k] = data
    if code.m:
        stripe[code.k :] = matmul_reference(code.field, code.parity_matrix, data)
    return stripe


def _seed_decode(code: MDSCode, indices: list[int], frag: np.ndarray) -> np.ndarray:
    """The seed decode: Gauss-Jordan inversion on every call + reference matmul."""
    sub = code.generator[indices]
    return matmul_reference(code.field, inverse(code.field, sub), frag)


def _seed_optimize(n: int, k: int, p: float, max_h: int):
    """The seed (pre-occupancy) optimizer: one 2^Nbnode subset enumeration
    per (shape, w) candidate, exactly the old ``optimize_config`` loop."""
    points = []
    for shape in shapes_for_nbnode(n - k + 1, max_h=max_h):
        for w in _w_vectors(shape, 512):
            quorum = TrapezoidQuorum(shape, w)
            points.append(
                ConfigPoint(
                    shape=shape,
                    w=w,
                    write=float(write_availability(quorum, p)),
                    read=float(exact_read_erc(quorum, n, k, p, method="enumeration")),
                )
            )
    return _collect_result(points)


def run_perf(
    sizes: dict | None = None, rng_seed: int = 0, profile: bool = False
) -> dict:
    """Run every benchmark; returns the JSON-ready document as a dict.

    ``profile=True`` (the CLI ``--profile`` flag) prints each section's
    top-15 cumulative-time functions from a cProfile of its warmup call.
    """
    global _PROFILE_SECTIONS
    _PROFILE_SECTIONS = profile
    try:
        return _run_perf(sizes, rng_seed)
    finally:
        _PROFILE_SECTIONS = False


def _run_perf(sizes: dict | None, rng_seed: int) -> dict:
    cfg = dict(DEFAULT_SIZES if sizes is None else sizes)
    n, k = cfg["n"], cfg["k"]
    length = cfg["block_length"]
    stripes = cfg["stripes"]
    rng = np.random.default_rng(rng_seed)

    code = MDSCode(n, k)
    batch = (
        rng.integers(0, 256, size=(stripes, k, length), dtype=np.int64)
        .astype(np.uint8)
    )
    data = batch[0]
    data_bytes = k * length
    results: dict[str, dict] = {}

    # -- encode ------------------------------------------------------- #
    enc_reps = cfg["encode_repeats"]
    t_seed_enc = _time_call(lambda: _seed_encode(code, data), enc_reps, "encode_seed")
    results["encode_seed"] = _entry(t_seed_enc, data_bytes)
    t_enc = _time_call(lambda: code.encode(data), enc_reps, "encode")
    results["encode"] = _entry(t_enc, data_bytes)
    t_enc_batch = _time_call(lambda: code.encode_batch(batch), max(1, enc_reps // 4), "encode_batch")
    results["encode_batch"] = _entry(t_enc_batch, stripes * data_bytes)

    # -- small-block batch (the dispatch-bound regime fusion targets) -- #
    s_len = cfg["small_block_length"]
    s_count = cfg["small_stripes"]
    small = (
        rng.integers(0, 256, size=(s_count, k, s_len), dtype=np.int64)
        .astype(np.uint8)
    )
    small_bytes = s_count * k * s_len

    def encode_loop() -> None:
        for stripe_data in small:
            code.encode(stripe_data)

    t_small_loop = _time_call(encode_loop, max(1, enc_reps // 4), "encode_small_loop")
    results["encode_small_loop"] = _entry(t_small_loop, small_bytes)
    t_small_batch = _time_call(
        lambda: code.encode_batch(small), max(1, enc_reps // 4)
    , "encode_small_batch")
    results["encode_small_batch"] = _entry(t_small_batch, small_bytes)

    # -- decode (repeated survivor set: the acceptance benchmark) ------ #
    stripe = code.encode(data)
    lost = [(3 * t) % n for t in range(code.m)] if code.m else []
    survivors = [i for i in range(n) if i not in lost][:k]
    frag = np.ascontiguousarray(stripe[survivors])
    dec_reps = cfg["decode_repeats"]
    t_seed_dec = _time_call(lambda: _seed_decode(code, survivors, frag), dec_reps, "decode_seed")
    results["decode_seed"] = _entry(t_seed_dec, data_bytes)
    code.clear_plan_cache()
    t_dec = _time_call(lambda: code.decode(survivors, frag), dec_reps, "decode_repeated")
    results["decode_repeated"] = _entry(t_dec, data_bytes)
    stripe_batch = code.encode_batch(batch)
    frag_batch = np.ascontiguousarray(stripe_batch[:, survivors])
    t_dec_batch = _time_call(
        lambda: code.decode_batch(survivors, frag_batch), max(1, dec_reps // 4)
    , "decode_batch")
    results["decode_batch"] = _entry(t_dec_batch, stripes * data_bytes)
    results["decode_plan_cache"] = code.plan_cache_info()

    # -- delta update (Algorithm 1's parity fold) ---------------------- #
    delta = rng.integers(0, 256, size=length, dtype=np.int64).astype(np.uint8)
    parity = stripe[k].copy() if code.m else np.zeros(length, dtype=np.uint8)

    def update() -> None:
        for j in range(code.k, code.n):
            code.apply_parity_delta(parity, j, 0, delta)

    t_upd = _time_call(update, enc_reps, "update_deltas")
    results["update_deltas"] = _entry(t_upd, max(1, code.m) * length)

    # -- Monte-Carlo estimators --------------------------------------- #
    quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(n - k + 1))
    trials = cfg["mc_trials"]
    t_mc_w = _time_call(
        lambda: mc_write_availability(quorum, 0.9, trials=trials, rng=123), 3
    , "mc_write")
    results["mc_write"] = {
        "seconds_per_call": t_mc_w,
        "trials": trials,
        "trials_per_s": trials / t_mc_w,
    }
    t_mc_r = _time_call(
        lambda: mc_read_availability_erc(quorum, n, k, 0.9, trials=trials, rng=123),
        3,
    "mc_read_erc",
    )
    results["mc_read_erc"] = {
        "seconds_per_call": t_mc_r,
        "trials": trials,
        "trials_per_s": trials / t_mc_r,
    }

    # -- exact availability: subset enumeration vs occupancy engine ---- #
    e_n, e_k = cfg["enum_n"], cfg["enum_k"]
    e_quorum = TrapezoidQuorum.uniform(default_shape_for_nbnode(e_n - e_k + 1))
    e_reps = cfg["enum_repeats"]
    t_enum_seed = _time_call(
        lambda: exact_read_erc(e_quorum, e_n, e_k, 0.9, method="enumeration"),
        e_reps,
    "exact_enum_seed",
    )
    results["exact_enum_seed"] = {
        "seconds_per_call": t_enum_seed,
        "nbnode": e_quorum.shape.total_nodes,
    }

    def exact_occupancy_cold() -> None:
        occupancy_cache_clear()
        exact_read_erc(e_quorum, e_n, e_k, 0.9)

    t_enum_occ = _time_call(exact_occupancy_cold, e_reps, "exact_enum_occupancy")
    results["exact_enum_occupancy"] = {
        "seconds_per_call": t_enum_occ,
        "nbnode": e_quorum.shape.total_nodes,
    }
    # Warm tables: the sweep/optimizer regime, where only the p fold runs.
    t_enum_warm = _time_call(
        lambda: exact_read_erc(e_quorum, e_n, e_k, 0.9), e_reps
    , "exact_enum_occupancy_warm")
    results["exact_enum_occupancy_warm"] = {
        "seconds_per_call": t_enum_warm,
        "nbnode": e_quorum.shape.total_nodes,
    }

    # -- end-to-end configuration optimizer ---------------------------- #
    o_n, o_k = cfg["opt_n"], cfg["opt_k"]
    o_p, o_max_h = cfg["opt_p"], cfg["opt_max_h"]
    o_reps = cfg["opt_repeats"]
    t_opt_seed = _time_call(lambda: _seed_optimize(o_n, o_k, o_p, o_max_h), o_reps, "optimizer_seed")
    evaluated = optimize_config(o_n, o_k, o_p, max_h=o_max_h).evaluated
    results["optimizer_seed"] = {
        "seconds_per_call": t_opt_seed,
        "evaluated": evaluated,
    }

    def optimize_cold() -> None:
        occupancy_cache_clear()
        optimize_config(o_n, o_k, o_p, max_h=o_max_h)

    t_opt = _time_call(optimize_cold, o_reps, "optimizer")
    results["optimizer"] = {
        "seconds_per_call": t_opt,
        "evaluated": evaluated,
    }

    # -- event-driven runtime (closed-loop latency scenario) ------------ #
    lat_ops = cfg["lat_ops"]

    def latency_sim() -> None:
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=lat_ops, block_length=cfg["lat_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["lat_clients"],
                think_time=0.05,
                horizon=60.0,  # generous: the op tape ends the run first
                faultload=FaultloadSpec(kind="churn", mtbf=5.0, mttr=1.0),
            ),
            seed=rng_seed,
        )
        ScenarioRunner(spec).run()

    t_lat = _time_call(latency_sim, cfg["lat_repeats"], "latency_sim")
    results["latency_sim"] = {
        "seconds_per_call": t_lat,
        "ops": lat_ops,
        "ops_per_s": lat_ops / t_lat,
    }

    # -- verified read path (metadata quorum + byzantine faultload) ------ #
    byz_ops = cfg["byz_ops"]

    def byzantine_sim(verified: bool):
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            MetadataSpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            metadata=(
                MetadataSpec(nodes=cfg["byz_metadata_nodes"])
                if verified
                else None
            ),
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=byz_ops, block_length=cfg["byz_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["byz_clients"],
                think_time=0.05,
                horizon=60.0,
                faultload=FaultloadSpec(
                    kind="byzantine",
                    byzantine_fraction=cfg["byz_fraction"],
                    corruption_mode="payload",
                    corruption_rate=cfg["byz_rate"],
                ),
            ),
            seed=rng_seed,
        )
        return ScenarioRunner(spec).run()

    byz_reps = cfg["byz_repeats"]
    t_byz = _time_call(lambda: byzantine_sim(True), byz_reps, "byzantine_overhead")
    t_byz_base = _time_call(lambda: byzantine_sim(False), byz_reps, "byzantine_baseline")
    results["byzantine_overhead"] = {
        "seconds_per_call": t_byz,
        "ops": byz_ops,
        "ops_per_s": byz_ops / t_byz,
        # informational: the fail-stop twin of the same run, so the cost
        # of digest checks + the metadata quorum is read off directly.
        "baseline_seconds_per_call": t_byz_base,
        "overhead_ratio": t_byz / t_byz_base if t_byz_base > 0 else None,
    }

    # -- Byzantine metadata tier (signed records + 3f+1 quorums) --------- #
    mbyz_ops = cfg["mbyz_ops"]

    def metadata_byzantine_sim(hardened: bool):
        from repro.api import (
            FaultloadSpec,
            LatencySpec,
            MetadataSpec,
            ScenarioRunner,
            ScenarioSpec,
            SystemSpec,
            WorkloadSpec,
        )

        f = cfg["mbyz_f"]
        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            metadata=(
                MetadataSpec(nodes=3 * f + 1, f=f)
                if hardened
                else MetadataSpec(nodes=cfg["byz_metadata_nodes"])
            ),
            latency=LatencySpec(kind="lognormal"),
            workload=WorkloadSpec(
                num_ops=mbyz_ops, block_length=cfg["mbyz_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="latency",
                clients=cfg["mbyz_clients"],
                think_time=0.05,
                horizon=60.0,
                faultload=FaultloadSpec(
                    kind="byzantine",
                    byzantine_fraction=0.0,
                    metadata_liars=f if hardened else 0,
                    metadata_mode="forge",
                ),
            ),
            seed=rng_seed,
        )
        return ScenarioRunner(spec).run()

    mbyz_reps = cfg["mbyz_repeats"]
    t_mbyz = _time_call(lambda: metadata_byzantine_sim(True), mbyz_reps, "metadata_byzantine")
    t_mbyz_base = _time_call(lambda: metadata_byzantine_sim(False), mbyz_reps, "metadata_baseline")
    results["metadata_byzantine"] = {
        "seconds_per_call": t_mbyz,
        "ops": mbyz_ops,
        "ops_per_s": mbyz_ops / t_mbyz,
        "f": cfg["mbyz_f"],
        # informational: the fail-stop unsigned tier on honest metadata,
        # so the cost of record tags + f+1-matching reads under f live
        # forgers is read off directly.
        "baseline_seconds_per_call": t_mbyz_base,
        "overhead_ratio": t_mbyz / t_mbyz_base if t_mbyz_base > 0 else None,
    }

    # -- sharded runtime (router + contended service queues) ------------ #
    shard_ops = cfg["shard_ops"]

    def sharded_sim() -> None:
        from repro.api import (
            LatencySpec,
            ScenarioRunner,
            ScenarioSpec,
            ServiceTimeSpec,
            ShardingSpec,
            SystemSpec,
            WorkloadSpec,
        )

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            latency=LatencySpec(kind="lognormal"),
            sharding=ShardingSpec(shards=cfg["shard_count"]),
            service=ServiceTimeSpec(kind="fixed", time=cfg["shard_service"]),
            workload=WorkloadSpec(
                num_ops=shard_ops, block_length=cfg["shard_block_length"]
            ),
            scenario=ScenarioSpec(
                kind="saturation",
                client_counts=(cfg["shard_clients"],),
                horizon=120.0,
            ),
            seed=rng_seed,
        )
        ScenarioRunner(spec).run()

    t_shard = _time_call(sharded_sim, cfg["shard_repeats"], "sharded_throughput")
    results["sharded_throughput"] = {
        "seconds_per_call": t_shard,
        "ops": shard_ops,
        "shards": cfg["shard_count"],
        "clients": cfg["shard_clients"],
        "ops_per_s": shard_ops / t_shard,
    }

    # -- wall-clock backend (AsyncCoordinator over inproc services) ------ #
    wc_ops = cfg["wc_ops"]

    def wallclock_inproc() -> None:
        from repro.api import (
            ScenarioSpec,
            SystemSpec,
            TransportSpec,
            WorkloadSpec,
        )
        from repro.services import run_wallclock

        spec = SystemSpec.trapezoid(
            9, 6, 2, 1, 1, 2,
            workload=WorkloadSpec(
                num_ops=wc_ops, block_length=cfg["wc_block_length"]
            ),
            transport=TransportSpec(kind="inproc"),
            scenario=ScenarioSpec(
                kind="wallclock",
                clients=cfg["wc_clients"],
                think_time=0.0,
                horizon=300.0,
            ),
            seed=rng_seed,
        )
        run_wallclock(spec)

    t_wc = _time_call(wallclock_inproc, cfg["wc_repeats"], "wallclock_inproc")
    results["wallclock_inproc"] = {
        "seconds_per_call": t_wc,
        "ops": wc_ops,
        "clients": cfg["wc_clients"],
        "ops_per_s": wc_ops / t_wc,
    }

    # -- event core (vectorized session layer vs per-object loop) ------- #
    from repro.runtime.event import EventCoordinator
    from repro.runtime.reference import ReferenceEventCoordinator

    ec_events: dict[str, int] = {}

    def event_core_run(coordinator_cls, ops: int) -> int:
        from repro.cluster.cluster import Cluster
        from repro.cluster.events import Simulator
        from repro.cluster.network import FixedLatency, Network
        from repro.runtime.rounds import Request, RetryPolicy, Round

        nodes = cfg["ec_nodes"]
        fanout = cfg["ec_fanout"]
        clients = min(cfg["ec_clients"], ops)
        sim = Simulator()
        cluster = Cluster(nodes, network=Network(latency=FixedLatency(0.001)))
        for i in range(nodes):
            cluster.nodes[i].put_data(i, np.zeros(8, dtype=np.uint8), 1)
        coordinator = coordinator_cls(
            cluster, sim, rng=1, policy=RetryPolicy(timeout=0.05, retries=1)
        )
        # One pinned fan-out, reused every round: the section measures
        # the session layer (scheduling, delivery, quorum bookkeeping),
        # not request-object construction.
        requests = [
            Request(i % nodes, "data_version", (i % nodes,))
            for i in range(fanout)
        ]
        done = [0]

        def plan():
            outcome = yield Round(
                requests, need=cfg["ec_need"], kind="version-query"
            )
            return outcome

        def resubmit(_result) -> None:
            done[0] += 1
            if done[0] + clients <= ops:
                coordinator.submit(plan(), resubmit)

        for _ in range(clients):
            coordinator.submit(plan(), resubmit)
        while sim.step():
            pass
        return sim.processed

    ec_ops = cfg["ec_ops"]
    ec_ref_ops = cfg["ec_ref_ops"]
    t_ec = _time_call(
        lambda: ec_events.__setitem__(
            "vectorized", event_core_run(EventCoordinator, ec_ops)
        ),
        cfg["ec_repeats"],
        "event_core",
    )
    t_ec_ref = _time_call(
        lambda: ec_events.__setitem__(
            "reference", event_core_run(ReferenceEventCoordinator, ec_ref_ops)
        ),
        cfg["ec_repeats"],
        "event_core_reference",
    )
    results["event_core"] = {
        "seconds_per_call": t_ec,
        "ops": ec_ops,
        "fanout": cfg["ec_fanout"],
        "need": cfg["ec_need"],
        "clients": min(cfg["ec_clients"], ec_ops),
        "events_per_op": ec_events["vectorized"] / ec_ops,
        "ops_per_s": ec_ops / t_ec,
    }
    results["event_core_reference"] = {
        "seconds_per_call": t_ec_ref,
        "ops": ec_ref_ops,
        "fanout": cfg["ec_fanout"],
        "need": cfg["ec_need"],
        "clients": min(cfg["ec_clients"], ec_ref_ops),
        "events_per_op": ec_events["reference"] / ec_ref_ops,
        "ops_per_s": ec_ref_ops / t_ec_ref,
    }

    speedups = {
        "event_core_vs_reference": (ec_ops / t_ec) / (ec_ref_ops / t_ec_ref),
        "decode_repeated_vs_seed": t_seed_dec / t_dec,
        "decode_batch_vs_seed": (t_seed_dec * stripes) / t_dec_batch,
        "encode_vs_seed": t_seed_enc / t_enc,
        "encode_batch_vs_seed": (t_seed_enc * stripes) / t_enc_batch,
        "encode_small_batch_vs_loop": t_small_loop / t_small_batch,
        "exact_enum_vs_seed": t_enum_seed / t_enum_occ,
        "optimizer_vs_seed": t_opt_seed / t_opt,
    }
    return {
        "schema": "repro-bench-perf/1",
        "config": cfg,
        "results": results,
        "speedups": speedups,
    }


def write_perf_json(
    path: str | Path,
    sizes: dict | None = None,
    quiet: bool = False,
    profile: bool = False,
) -> Path:
    """Run the harness and write ``path``; returns the path."""
    doc = run_perf(sizes=sizes, profile=profile)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if not quiet:
        for name, entry in doc["results"].items():
            mbs = entry.get("mb_per_s")
            tps = entry.get("trials_per_s")
            ops = entry.get("ops_per_s")
            if mbs is not None:
                print(f"{name:24s} {mbs:10.1f} MB/s")
            elif tps is not None:
                print(f"{name:24s} {tps:10.0f} trials/s")
            elif ops is not None:
                print(f"{name:24s} {ops:10.0f} ops/s")
        for name, ratio in doc["speedups"].items():
            print(f"{name:28s} {ratio:6.1f}x")
    return path
