"""Throughput-saturation instrumentation for the sharded runtime.

With per-node service queues attached, the closed-loop runtime is a
closed queueing network: each of ``clients`` clients keeps one operation
in flight (plus think time), every request occupies its node for a
sampled service time, and aggregate throughput rises with the client
count until the busiest server saturates. :func:`saturation_sweep` runs
one :class:`~repro.sim.trace_sim.ShardedClosedLoopSimulation` per client
count and packages the ops/s-vs-clients curve — the headline scaling
question the paper's single-instance snapshot model cannot ask.

Throughput here is *goodput* in virtual time: successful operations per
virtual second (failed operations — timeouts under overload — complete
too, but count separately). :func:`knee_clients` reports the knee of the
curve: the smallest client count already delivering ``threshold`` of the
peak, i.e. where adding clients stops buying throughput and only buys
queueing delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import ConfigurationError
from repro.runtime.event import NodeServiceQueue
from repro.sim.trace_sim import ShardedClosedLoopSimulation

__all__ = [
    "SaturationPoint",
    "run_saturation_point",
    "saturation_sweep",
    "knee_clients",
    "queue_summary",
]


def queue_summary(
    queues: Mapping[int, NodeServiceQueue] | None, duration: float
) -> dict:
    """Aggregate what the per-node service queues measured.

    ``mean_wait`` weights each node by its started requests;
    ``max_utilization`` is the busiest server's busy fraction over
    ``duration`` — the capacity bound the saturation curve plateaus at.
    Returns zeros when queueing is off so JSON consumers need no special
    case.
    """
    if not queues:
        return {
            "nodes": 0,
            "arrivals": 0,
            "served": 0,
            "mean_wait": 0.0,
            "max_wait_node": None,
            "max_queue_len": 0,
            "mean_utilization": 0.0,
            "max_utilization": 0.0,
        }
    stats = {node_id: q.stats for node_id, q in queues.items()}
    started = sum(s.started for s in stats.values())
    total_wait = sum(s.total_wait for s in stats.values())
    utils = {i: s.utilization(duration) for i, s in stats.items()}
    worst_wait = max(stats, key=lambda i: stats[i].mean_wait)
    return {
        "nodes": len(stats),
        "arrivals": sum(s.arrivals for s in stats.values()),
        "served": sum(s.served for s in stats.values()),
        "mean_wait": total_wait / started if started else 0.0,
        "max_wait_node": worst_wait,
        "max_queue_len": max(s.max_queue_len for s in stats.values()),
        "mean_utilization": sum(utils.values()) / len(utils),
        "max_utilization": max(utils.values()),
    }


@dataclass
class SaturationPoint:
    """One client count of the ops/s-vs-clients curve."""

    clients: int
    ops_completed: int  # successful reads + writes
    ops_failed: int
    virtual_duration: float
    throughput: float  # successful ops per virtual second
    aggregate: dict = field(repr=False)  # tally summary + op percentiles
    per_shard: list = field(repr=False)
    queues: dict = field(repr=False)
    trace_hash: str = field(repr=False, default="")

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "virtual_duration": self.virtual_duration,
            "throughput": self.throughput,
            "aggregate": self.aggregate,
            "per_shard": self.per_shard,
            "queues": self.queues,
            "trace_hash": self.trace_hash,
        }


def run_saturation_point(
    clients: int, run: ShardedClosedLoopSimulation
) -> SaturationPoint:
    """Run one fresh closed-loop simulation and distil its curve point.

    The per-client-count unit of both the serial sweep below and the
    runner's process-pool fan-out: everything a point reports (tally
    summary, per-shard views, queue stats, trace hash) is derived from
    the one ``run``, so a point computes identically wherever it runs.
    """
    tally = run.run()
    duration = run.sim.now
    completed = tally.reads_succeeded + tally.writes_succeeded
    failed = (
        tally.reads_attempted
        + tally.writes_attempted
        - completed
    )
    aggregate = tally.summary()
    aggregate["operation_latency"] = tally.operation_percentiles()
    # The service-queue mapping is shared by every shard coordinator.
    queues = run.router.shards[0].coordinator.queues
    return SaturationPoint(
        clients=clients,
        ops_completed=completed,
        ops_failed=failed,
        virtual_duration=duration,
        throughput=completed / duration if duration > 0 else 0.0,
        aggregate=aggregate,
        per_shard=run.shard_summaries(),
        queues=queue_summary(queues, duration),
        trace_hash=run.router.trace_hash(),
    )


def saturation_sweep(
    make_run: Callable[[int], ShardedClosedLoopSimulation],
    client_counts: Iterable[int],
) -> list[SaturationPoint]:
    """Run one fresh closed-loop simulation per client count.

    ``make_run(clients)`` must return a *fresh*
    :class:`ShardedClosedLoopSimulation` (own simulator, cluster and
    router — points must not share mutable state); the sweep runs it and
    distils one :class:`SaturationPoint`. Determinism is the caller's
    contract: derive each point's RNG streams from the experiment seed
    and the same seed reproduces the identical curve.
    """
    points: list[SaturationPoint] = []
    for clients in client_counts:
        clients = int(clients)
        if clients < 1:
            raise ConfigurationError(f"client counts must be >= 1, got {clients}")
        points.append(run_saturation_point(clients, make_run(clients)))
    return points


def knee_clients(points: list[SaturationPoint], threshold: float = 0.9) -> int:
    """The knee of the curve: fewest clients reaching ``threshold`` of peak."""
    if not points:
        raise ConfigurationError("knee_clients needs at least one point")
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    peak = max(p.throughput for p in points)
    if peak == 0.0:
        return points[0].clients
    eligible = [p.clients for p in points if p.throughput >= threshold * peak]
    return min(eligible)
