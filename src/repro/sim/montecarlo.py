"""Vectorized snapshot-model Monte Carlo (validates the paper's formulas).

Samples i.i.d. Bernoulli(p) alive-matrices and evaluates the protocol
predicates with numpy matrix operations — no Python loop over trials, so
millions of samples are cheap. The per-level threshold comparisons use
the read-only arrays cached on :class:`TrapezoidQuorum`
(``w_array`` / ``read_thresholds_array``), shared with the occupancy
engine, instead of rebuilding them on every call. These estimators and the closed forms of
:mod:`repro.analysis` must agree within confidence intervals; the test
suite enforces that, and the benchmarks cross-reference all three
evaluations (closed form / exact enumeration / Monte Carlo).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.availability import validate_erc_geometry
from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.metrics import MCEstimate

__all__ = [
    "level_membership_matrix",
    "mc_write_availability",
    "mc_read_availability_fr",
    "mc_read_availability_erc",
]


@lru_cache(maxsize=256)
def _membership_matrix_cached(quorum: TrapezoidQuorum) -> np.ndarray:
    shape = quorum.shape
    m = np.zeros((shape.h + 1, shape.total_nodes), dtype=np.int64)
    for l in shape.levels:
        m[l, list(shape.positions(l))] = 1
    m.setflags(write=False)
    return m


def level_membership_matrix(quorum: TrapezoidQuorum) -> np.ndarray:
    """(h+1, Nbnode) 0/1 matrix: M[l, pos] = 1 iff pos is on level l.

    Cached per quorum (hashable frozen dataclass): every ``mc_*``
    estimator and the availability sweeps reuse one read-only matrix
    instead of rebuilding it per call.
    """
    return _membership_matrix_cached(quorum)


def _check_args(p: float, trials: int) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")


def _sample_level_counts(
    quorum: TrapezoidQuorum, p: float, trials: int, rng
) -> tuple[np.ndarray, np.ndarray]:
    """Shared sampler: one (trials, Nbnode) alive draw + per-level counts.

    Returns ``(alive, counts)`` with ``counts[t, l]`` the number of alive
    nodes of trial t on level l — the quantity all three estimators'
    predicates are expressed in.
    """
    alive = rng.random((trials, quorum.shape.total_nodes)) < p
    counts = alive @ level_membership_matrix(quorum).T  # (trials, h+1)
    return alive, counts


def mc_write_availability(
    quorum: TrapezoidQuorum, p: float, trials: int = 100_000, rng=None
) -> MCEstimate:
    """Estimate eq. (8)/(9): every level musters >= w_l alive nodes."""
    _check_args(p, trials)
    _, counts = _sample_level_counts(quorum, p, trials, make_rng(rng))
    ok = np.all(counts >= quorum.w_array, axis=1)
    return MCEstimate(int(ok.sum()), trials)


def mc_read_availability_fr(
    quorum: TrapezoidQuorum, p: float, trials: int = 100_000, rng=None
) -> MCEstimate:
    """Estimate eq. (10): some level musters >= r_l alive nodes."""
    _check_args(p, trials)
    _, counts = _sample_level_counts(quorum, p, trials, make_rng(rng))
    ok = np.any(counts >= quorum.read_thresholds_array, axis=1)
    return MCEstimate(int(ok.sum()), trials)


def mc_read_availability_erc(
    quorum: TrapezoidQuorum,
    n: int,
    k: int,
    p: float,
    trials: int = 100_000,
    rng=None,
) -> MCEstimate:
    """Estimate the exact Algorithm-2 snapshot predicate for TRAP-ERC.

    Success requires (a) a version-check quorum in the trapezoid and
    (b) N_i alive (direct read) or >= k alive among the other n-1 nodes
    (decode). Position 0 of the trapezoid is N_i; the k-1 data nodes
    outside the trapezoid are sampled separately.
    """
    validate_erc_geometry(quorum, n, k)
    _check_args(p, trials)
    rng = make_rng(rng)
    trap_alive, counts = _sample_level_counts(quorum, p, trials, rng)
    other_alive_count = (rng.random((trials, k - 1)) < p).sum(axis=1)
    check_ok = np.any(counts >= quorum.read_thresholds_array, axis=1)
    ni_alive = trap_alive[:, 0]
    parity_alive = trap_alive[:, 1:].sum(axis=1)
    decode_ok = (parity_alive + other_alive_count) >= k
    ok = check_ok & (ni_alive | decode_ok)
    return MCEstimate(int(ok.sum()), trials)
