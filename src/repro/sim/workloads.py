"""Workload generators for protocol-level simulations.

Each generator yields a sequence of :class:`Operation` records over the k
data blocks of a stripe (or the logical blocks of a volume). The mixes
model the storage contexts the paper discusses:

* ``uniform``      — uncorrelated random block access,
* ``sequential``   — streaming scans (backup/restore style),
* ``zipf``         — hot-spot skew typical of file-system metadata,
* ``vm_disk``      — the paper's motivating virtual-machine disk: bursts
  of sequential writes (installs, log appends) mixed with skewed random
  IO over a hot working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

import numpy as np

from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError

__all__ = [
    "OpKind",
    "Operation",
    "write_payload",
    "uniform_workload",
    "sequential_workload",
    "zipf_workload",
    "vm_disk_workload",
]


class OpKind(str, Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One logical block operation."""

    kind: OpKind
    block: int
    payload_seed: int = 0  # deterministic payload derivation for writes


@lru_cache(maxsize=4096)
def _payload_master(seed: int, length: int) -> np.ndarray:
    arr = (
        np.random.default_rng(seed)
        .integers(0, 256, length, dtype=np.int64)
        .astype(np.uint8)
    )
    arr.setflags(write=False)
    return arr


def write_payload(seed: int, length: int) -> np.ndarray:
    """The deterministic write payload of ``Operation.payload_seed``.

    Bit-identical to the historical inline derivation
    ``default_rng(seed).integers(0, 256, length, int64).astype(uint8)``
    (results are pinned across PRs), but memoized: replaying the same
    workload — bench determinism double-runs, retried scenarios, hot
    blocks rewritten under skewed mixes — skips the Generator
    construction and draw. Returns a fresh writable copy each call.
    """
    return _payload_master(int(seed), int(length)).copy()


def _check(num_ops: int, num_blocks: int, read_fraction: float) -> None:
    if num_ops < 1:
        raise ConfigurationError(f"num_ops must be >= 1, got {num_ops}")
    if num_blocks < 1:
        raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError(
            f"read_fraction must be in [0, 1], got {read_fraction}"
        )


def _assemble(kinds: np.ndarray, blocks: np.ndarray, rng) -> list[Operation]:
    seeds = rng.integers(0, 2**31 - 1, size=len(kinds))
    return [
        Operation(
            OpKind.READ if is_read else OpKind.WRITE,
            int(block),
            int(seed),
        )
        for is_read, block, seed in zip(kinds, blocks, seeds)
    ]


def uniform_workload(
    num_ops: int, num_blocks: int, read_fraction: float = 0.5, rng=None
) -> list[Operation]:
    """Uncorrelated uniform block access."""
    _check(num_ops, num_blocks, read_fraction)
    rng = make_rng(rng)
    kinds = rng.random(num_ops) < read_fraction
    blocks = rng.integers(0, num_blocks, size=num_ops)
    return _assemble(kinds, blocks, rng)


def sequential_workload(
    num_ops: int, num_blocks: int, read_fraction: float = 0.5, rng=None
) -> list[Operation]:
    """Round-robin scan over the blocks (streaming access)."""
    _check(num_ops, num_blocks, read_fraction)
    rng = make_rng(rng)
    kinds = rng.random(num_ops) < read_fraction
    blocks = np.arange(num_ops) % num_blocks
    return _assemble(kinds, blocks, rng)


def zipf_workload(
    num_ops: int,
    num_blocks: int,
    read_fraction: float = 0.5,
    alpha: float = 1.2,
    rng=None,
) -> list[Operation]:
    """Zipf-skewed access: block rank r drawn with weight r^-alpha."""
    _check(num_ops, num_blocks, read_fraction)
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    rng = make_rng(rng)
    weights = 1.0 / np.arange(1, num_blocks + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    kinds = rng.random(num_ops) < read_fraction
    blocks = rng.choice(num_blocks, size=num_ops, p=weights)
    return _assemble(kinds, blocks, rng)


def vm_disk_workload(
    num_ops: int,
    num_blocks: int,
    read_fraction: float = 0.7,
    burst_length: int = 8,
    hot_fraction: float = 0.2,
    rng=None,
) -> list[Operation]:
    """VM-disk style: sequential write bursts + skewed random IO.

    With probability 0.3 a *burst* starts: ``burst_length`` consecutive
    blocks are written in order (installer / log-append behaviour).
    Otherwise a single op lands on the hot set (first ``hot_fraction`` of
    the blocks) 80% of the time.
    """
    _check(num_ops, num_blocks, read_fraction)
    if burst_length < 1:
        raise ConfigurationError(f"burst_length must be >= 1, got {burst_length}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ConfigurationError(
            f"hot_fraction must be in (0, 1], got {hot_fraction}"
        )
    rng = make_rng(rng)
    hot_blocks = max(1, int(num_blocks * hot_fraction))
    ops: list[Operation] = []
    while len(ops) < num_ops:
        if rng.random() < 0.3:
            start = int(rng.integers(0, num_blocks))
            for off in range(min(burst_length, num_ops - len(ops))):
                ops.append(
                    Operation(
                        OpKind.WRITE,
                        (start + off) % num_blocks,
                        int(rng.integers(0, 2**31 - 1)),
                    )
                )
        else:
            if rng.random() < 0.8:
                block = int(rng.integers(0, hot_blocks))
            else:
                block = int(rng.integers(0, num_blocks))
            kind = OpKind.READ if rng.random() < read_fraction else OpKind.WRITE
            ops.append(Operation(kind, block, int(rng.integers(0, 2**31 - 1))))
    return ops[:num_ops]
