"""Protocol-level Monte Carlo: run the *real* Algorithms 1-2 per trial.

Where :mod:`repro.sim.montecarlo` samples the availability *predicates*,
this module executes the actual protocol engines against the simulated
cluster for every trial — RPCs, version matrices, decode paths and all —
and measures the empirical success rate. Under the snapshot model (state
fully synced before each trial) the two must agree, which is the
strongest internal-consistency check the reproduction has: formula,
predicate sampler and executable protocol all describing the same system.

Hot-path engineering (the per-trial protocol work is irreducible, but the
harness around it is not):

* the (trials, n) alive matrix is sampled in one vectorized draw instead
  of one RNG dispatch per trial;
* the version-0 stripes are encoded once (``MDSCode.encode_batch``) and
  trial resets replay the cached codewords via ``load_stripe`` — the
  seed implementation re-encoded the stripe after every write trial;
* with ``stripes > 1`` the harness drives several stripes under
  RAID-style rotated placements in the same trial, so one failure draw
  exercises many survivor sets and the decode-plan cache, the way a
  volume-level sweep does.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.rng import make_rng
from repro.core.trap_erc import TrapErcProtocol
from repro.core.trap_fr import TrapFrProtocol
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.metrics import MCEstimate

__all__ = ["ProtocolMonteCarlo"]


class ProtocolMonteCarlo:
    """Empirical availability of the executable protocols.

    Parameters
    ----------
    n, k:
        Code parameters.
    quorum:
        Trapezoid specification (n - k + 1 positions).
    block_length:
        Payload length in symbols (small by default: availability does not
        depend on it).
    stripes:
        Number of independent stripes driven per trial (default 1, the
        paper's single-stripe setting). Stripe s uses the rotated
        placement ``node_ids = (s, s+1, ..) mod n``, so different stripes
        decode through different survivor sets of the same alive vector.
    """

    def __init__(
        self,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        block_length: int = 8,
        rng=None,
        stripes: int = 1,
    ) -> None:
        if stripes < 1:
            raise ConfigurationError(f"stripes must be >= 1, got {stripes}")
        self.rng = make_rng(rng)
        self.n = n
        self.k = k
        self.quorum = quorum
        self.stripes = stripes
        self.cluster = Cluster(n)
        self.code = MDSCode(n, k)
        self.ercs: list[TrapErcProtocol] = []
        self.frs: list[TrapFrProtocol] = []
        for s in range(stripes):
            layout = StripeLayout(
                n, k, tuple((b + s) % n for b in range(n))
            )
            self.ercs.append(
                TrapErcProtocol(
                    self.cluster, self.code, quorum,
                    layout=layout, stripe_id=f"mc-erc-{s}",
                )
            )
            self.frs.append(
                TrapFrProtocol(
                    self.cluster, n, k, quorum,
                    layout=layout, stripe_id=f"mc-fr-{s}",
                )
            )
        # Back-compat single-stripe handles (stripe 0).
        self.erc = self.ercs[0]
        self.fr = self.frs[0]
        self.data = (
            self.rng.integers(0, 256, size=(stripes, k, block_length), dtype=np.int64)
            .astype(np.uint8)
        )
        # Version-0 codewords, encoded once for every trial reset.
        self._stripe_cache = self.code.encode_batch(self.data)
        self._load()

    def _load(self) -> None:
        self.cluster.recover_all()
        for erc, fr, stripe, data in zip(
            self.ercs, self.frs, self._stripe_cache, self.data
        ):
            erc.load_stripe(stripe)
            fr.initialize(data)

    def _sample_alive_matrix(self, p: float, trials: int, rng=None) -> np.ndarray:
        """(trials, n) Bernoulli(p) alive matrix in one vectorized draw."""
        rng = self.rng if rng is None else rng
        return rng.random((trials, self.n)) < p

    # ------------------------------------------------------------------ #

    def read_availability(
        self,
        p: float,
        trials: int = 400,
        protocol: str = "erc",
        block: int = 0,
        rng=None,
    ) -> MCEstimate:
        """Fraction of (trial, stripe) reads of ``block`` that succeed.

        Reads do not mutate state, so the stripes stay synced across
        trials (pure snapshot model). ``rng`` overrides the instance
        stream for this call — how the runner hands a trial chunk its
        own pre-spawned child stream (default: the instance stream,
        the exact historical behavior).
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        engines = self._engines(protocol)
        rng = self.rng if rng is None else make_rng(rng)
        alive = self._sample_alive_matrix(p, trials, rng)
        successes = 0
        for t in range(trials):
            self.cluster.apply_alive_vector(alive[t])
            for engine in engines:
                result = engine.read_block(block)
                if result.success:
                    successes += 1
        self.cluster.recover_all()
        return MCEstimate(successes, trials * len(engines))

    def write_availability(
        self,
        p: float,
        trials: int = 200,
        protocol: str = "erc",
        block: int = 0,
        rng=None,
    ) -> MCEstimate:
        """Fraction of (trial, stripe) writes of ``block`` that succeed.

        Writes mutate state (including partially-failed ones), so the
        stripes are re-loaded from the cached version-0 codewords after
        every trial to keep trials i.i.d. under the snapshot model.
        ``rng`` (as in :meth:`read_availability`) drives both the alive
        draw and the per-trial payloads when given.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        engines = self._engines(protocol)
        rng = self.rng if rng is None else make_rng(rng)
        length = self.data.shape[2]
        alive = self._sample_alive_matrix(p, trials, rng)
        successes = 0
        for t in range(trials):
            self.cluster.apply_alive_vector(alive[t])
            for engine in engines:
                value = (
                    rng.integers(0, 256, length, dtype=np.int64).astype(np.uint8)
                )
                result = engine.write_block(block, value)
                if result.success:
                    successes += 1
            self._load()  # reset to synced version-0 stripes
        return MCEstimate(successes, trials * len(engines))

    def _engines(self, protocol: str) -> list:
        if protocol == "erc":
            return self.ercs
        if protocol == "fr":
            return self.frs
        raise ConfigurationError(f"protocol must be 'erc' or 'fr', got {protocol!r}")

    def _engine(self, protocol: str):
        """Single-stripe engine accessor (stripe 0), kept for callers."""
        return self._engines(protocol)[0]
