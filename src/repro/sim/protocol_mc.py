"""Protocol-level Monte Carlo: run the *real* Algorithms 1-2 per trial.

Where :mod:`repro.sim.montecarlo` samples the availability *predicates*,
this module executes the actual protocol engines against the simulated
cluster for every trial — RPCs, version matrices, decode paths and all —
and measures the empirical success rate. Under the snapshot model (state
fully synced before each trial) the two must agree, which is the
strongest internal-consistency check the reproduction has: formula,
predicate sampler and executable protocol all describing the same system.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.rng import make_rng
from repro.core.trap_erc import TrapErcProtocol
from repro.core.trap_fr import TrapFrProtocol
from repro.erasure.code import MDSCode
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.metrics import MCEstimate

__all__ = ["ProtocolMonteCarlo"]


class ProtocolMonteCarlo:
    """Empirical availability of the executable protocols.

    Parameters
    ----------
    n, k:
        Code parameters.
    quorum:
        Trapezoid specification (n - k + 1 positions).
    block_length:
        Payload length in symbols (small by default: availability does not
        depend on it).
    """

    def __init__(
        self,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        block_length: int = 8,
        rng=None,
    ) -> None:
        self.rng = make_rng(rng)
        self.n = n
        self.k = k
        self.quorum = quorum
        self.cluster = Cluster(n)
        self.code = MDSCode(n, k)
        self.erc = TrapErcProtocol(self.cluster, self.code, quorum, stripe_id="mc-erc")
        self.fr = TrapFrProtocol(self.cluster, n, k, quorum, stripe_id="mc-fr")
        self.data = (
            self.rng.integers(0, 256, size=(k, block_length), dtype=np.int64)
            .astype(np.uint8)
        )
        self._load()

    def _load(self) -> None:
        self.cluster.recover_all()
        self.erc.initialize(self.data)
        self.fr.initialize(self.data)

    def _sample_alive(self, p: float) -> np.ndarray:
        return self.rng.random(self.n) < p

    # ------------------------------------------------------------------ #

    def read_availability(
        self, p: float, trials: int = 400, protocol: str = "erc", block: int = 0
    ) -> MCEstimate:
        """Fraction of trials in which a read of ``block`` succeeds.

        Reads do not mutate state, so the stripe stays synced across
        trials (pure snapshot model).
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        engine = self._engine(protocol)
        successes = 0
        for _ in range(trials):
            self.cluster.apply_alive_vector(self._sample_alive(p))
            result = engine.read_block(block)
            if result.success:
                successes += 1
        self.cluster.recover_all()
        return MCEstimate(successes, trials)

    def write_availability(
        self, p: float, trials: int = 200, protocol: str = "erc", block: int = 0
    ) -> MCEstimate:
        """Fraction of trials in which a write of ``block`` succeeds.

        Writes mutate state (including partially-failed ones), so the
        stripe is re-initialized after every trial to keep trials i.i.d.
        under the snapshot model.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        engine = self._engine(protocol)
        length = self.data.shape[1]
        successes = 0
        for t in range(trials):
            self.cluster.apply_alive_vector(self._sample_alive(p))
            value = self.rng.integers(0, 256, length, dtype=np.int64).astype(np.uint8)
            result = engine.write_block(block, value)
            if result.success:
                successes += 1
            self._load()  # reset to a synced version-0 stripe
        return MCEstimate(successes, trials)

    def _engine(self, protocol: str):
        if protocol == "erc":
            return self.erc
        if protocol == "fr":
            return self.fr
        raise ConfigurationError(f"protocol must be 'erc' or 'fr', got {protocol!r}")
