"""History-model simulation: the protocol under failure/repair *traces*.

The paper analyzes the snapshot model only. This driver removes that
idealization: nodes fail and recover along a :class:`FailureTrace`, miss
writes while down, come back *stale* (their version records lag), and the
Algorithm-1 guard then rejects their parity deltas until the optional
anti-entropy service repairs them. The tally quantifies what the paper's
formulas cannot see — staleness-induced unavailability and the value of
repair — while verifying that strict consistency is never violated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator
from repro.cluster.failures import EventKind, FailureTrace
from repro.cluster.rng import make_rng
from repro.core.repair import RepairService
from repro.core.trap_erc import TrapErcProtocol
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.metrics import OperationTally
from repro.sim.workloads import OpKind, Operation, uniform_workload

__all__ = ["TraceSimConfig", "TraceSimulation"]


@dataclass(frozen=True)
class TraceSimConfig:
    """Knobs of a history-model run."""

    horizon: float = 1000.0
    op_rate: float = 1.0  # mean operations per unit time
    read_fraction: float = 0.5
    repair_interval: float | None = None  # None disables anti-entropy
    block_length: int = 8
    wipe_on_repair: bool = False  # True models disk replacement
    stripes: int = 1  # logical blocks = stripes * k (volume-style runs)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.op_rate <= 0:
            raise ConfigurationError("op_rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.repair_interval is not None and self.repair_interval <= 0:
            raise ConfigurationError("repair_interval must be positive")
        if self.stripes < 1:
            raise ConfigurationError("stripes must be >= 1")


class TraceSimulation:
    """Drive TRAP-ERC stripes through a failure trace.

    With ``config.stripes == 1`` (default) this is the paper's
    single-stripe setting. With more stripes the run models a small
    volume: logical block b lives in stripe ``b // k`` as data block
    ``b % k`` under a rotated placement, all stripes share the cluster
    and the failure trace, and initialization encodes the whole volume
    in one ``MDSCode.encode_batch`` dispatch.
    """

    def __init__(
        self,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        trace: FailureTrace,
        config: TraceSimConfig | None = None,
        workload: list[Operation] | None = None,
        rng=None,
    ) -> None:
        self.config = config if config is not None else TraceSimConfig()
        if trace.num_nodes != n:
            raise ConfigurationError(
                f"trace covers {trace.num_nodes} nodes but the stripe needs {n}"
            )
        self.rng = make_rng(rng)
        self.trace = trace
        self.cluster = Cluster(n)
        self.code = MDSCode(n, k)
        self.protocols: list[TrapErcProtocol] = []
        for s in range(self.config.stripes):
            layout = StripeLayout(n, k, tuple((b + s) % n for b in range(n)))
            self.protocols.append(
                TrapErcProtocol(
                    self.cluster, self.code, quorum,
                    layout=layout, stripe_id=f"trace-{s}",
                )
            )
        self.protocol = self.protocols[0]  # single-stripe handle
        self.repairs = [RepairService(proto) for proto in self.protocols]
        self.repair = self.repairs[0]
        self.workload = workload
        self.tally = OperationTally()
        # Oracle of acknowledged writes: logical block -> (version, payload).
        self._committed: dict[int, tuple[int, np.ndarray]] = {}

    @property
    def num_logical_blocks(self) -> int:
        """Addressable blocks of the run: stripes * k."""
        return self.config.stripes * self.code.k

    # ------------------------------------------------------------------ #

    def _initial_data(self) -> np.ndarray:
        return (
            self.rng.integers(
                0,
                256,
                size=(
                    self.config.stripes,
                    self.code.k,
                    self.config.block_length,
                ),
                dtype=np.int64,
            ).astype(np.uint8)
        )

    def _arrival_times(self) -> np.ndarray:
        """Poisson arrivals over [0, horizon]."""
        expected = self.config.op_rate * self.config.horizon
        draws = max(16, int(expected * 1.5) + 16)
        gaps = self.rng.exponential(1.0 / self.config.op_rate, size=draws)
        times = np.cumsum(gaps)
        while times[-1] < self.config.horizon:
            more = self.rng.exponential(1.0 / self.config.op_rate, size=draws)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        return times[times < self.config.horizon]

    def _ops(self, count: int) -> list[Operation]:
        if self.workload is not None:
            reps = -(-count // len(self.workload))
            return (self.workload * reps)[:count]
        return uniform_workload(
            count, self.num_logical_blocks, self.config.read_fraction, rng=self.rng
        )

    # ------------------------------------------------------------------ #

    def _execute(self, op: Operation) -> None:
        logical = op.block % self.num_logical_blocks
        protocol = self.protocols[logical // self.code.k]
        i = logical % self.code.k
        if op.kind is OpKind.READ:
            self.tally.reads_attempted += 1
            result = protocol.read_block(i)
            if result.success:
                self.tally.reads_succeeded += 1
                if result.case is not None and result.case.value == "decode":
                    self.tally.reads_decoded += 1
                else:
                    self.tally.reads_direct += 1
                committed = self._committed.get(logical)
                if committed is not None:
                    version, payload = committed
                    if result.version < version or (
                        result.version == version
                        and not np.array_equal(result.value, payload)
                    ):
                        self.tally.consistency_violations += 1
        else:
            self.tally.writes_attempted += 1
            payload_rng = np.random.default_rng(op.payload_seed)
            value = payload_rng.integers(
                0, 256, self.config.block_length, dtype=np.int64
            ).astype(np.uint8)
            result = protocol.write_block(i, value)
            if result.success:
                self.tally.writes_succeeded += 1
                self._committed[logical] = (result.version, value.copy())

    def _repair_pass(self) -> None:
        for repair in self.repairs:
            self.tally.repairs += repair.sync_all()

    # ------------------------------------------------------------------ #

    def run(self) -> OperationTally:
        """Execute the full simulation; returns the operation tally."""
        sim = Simulator()
        data = self._initial_data()
        # One batched encode for the whole volume, then per-stripe loads.
        stripes = self.code.encode_batch(data)
        for s, protocol in enumerate(self.protocols):
            protocol.load_stripe(stripes[s])
            for i in range(self.code.k):
                self._committed[s * self.code.k + i] = (0, data[s, i].copy())

        for ev in self.trace.events:
            if ev.time >= self.config.horizon:
                continue
            if ev.kind is EventKind.FAIL:
                sim.schedule_at(ev.time, lambda nid=ev.node_id: self.cluster.fail(nid))
            else:
                sim.schedule_at(
                    ev.time,
                    lambda nid=ev.node_id: self.cluster.recover(
                        nid, wipe=self.config.wipe_on_repair
                    ),
                )

        times = self._arrival_times()
        for t, op in zip(times, self._ops(len(times))):
            sim.schedule_at(float(t), lambda o=op: self._execute(o))

        if self.config.repair_interval is not None:
            interval = self.config.repair_interval
            t = interval
            while t < self.config.horizon:
                sim.schedule_at(t, self._repair_pass)
                t += interval

        sim.run_until(self.config.horizon)
        self.tally.messages = self.cluster.network.stats.messages
        return self.tally
