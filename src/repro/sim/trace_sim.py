"""History-model simulation: the protocol under failure/repair *traces*.

The paper analyzes the snapshot model only. The drivers here remove that
idealization in two stages:

* :class:`TraceSimulation` — the legacy instant-RPC driver: nodes fail
  and recover along a :class:`FailureTrace`, miss writes while down, come
  back *stale*, and the Algorithm-1 guard then rejects their parity
  deltas until the optional anti-entropy service repairs them. Each
  operation executes atomically at its arrival instant (results are
  pinned across PRs).
* :class:`ClosedLoopSimulation` — the event-driven driver built on
  :mod:`repro.runtime`: a pool of closed-loop clients keeps several
  operations genuinely *in flight* at once (each client issues its next
  operation ``think_time`` after the previous one completes), every
  message travels with sampled latency, and failures, repairs and
  partitions from the faultload interleave *mid-operation*. It measures
  what the instant path cannot: operation-latency percentiles
  (quorum-wait tails under faults) and per-round message costs.

Both tally consistency: a read must never return a version older than
the last write *completed before the read began* (real-time order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator
from repro.cluster.failures import EventKind, FailureTrace
from repro.cluster.rng import make_rng
from repro.core.repair import RepairService
from repro.core.trap_erc import TrapErcProtocol
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.event import EventCoordinator
from repro.runtime.router import ShardRouter
from repro.sim.metrics import LatencyTally, OperationTally
from repro.sim.workloads import OpKind, Operation, uniform_workload, write_payload

__all__ = [
    "TraceSimConfig",
    "TraceSimulation",
    "PartitionWindow",
    "ClosedLoopConfig",
    "ClosedLoopSimulation",
    "ShardedClosedLoopSimulation",
    "schedule_trace",
    "schedule_partitions",
]


def schedule_trace(
    sim: Simulator,
    cluster: Cluster,
    trace: FailureTrace,
    horizon: float,
    wipe_on_repair: bool = False,
) -> None:
    """Schedule a failure trace's fail/recover transitions on ``sim``."""
    for ev in trace.events:
        if ev.time >= horizon:
            continue
        if ev.kind is EventKind.FAIL:
            sim.schedule_at(ev.time, lambda nid=ev.node_id: cluster.fail(nid))
        else:
            sim.schedule_at(
                ev.time,
                lambda nid=ev.node_id: cluster.recover(nid, wipe=wipe_on_repair),
            )


@dataclass(frozen=True)
class PartitionWindow:
    """One partition episode: ``nodes`` unreachable during [start, end)."""

    start: float
    end: float
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"partition window must have end > start, got "
                f"[{self.start}, {self.end})"
            )


def schedule_partitions(
    sim: Simulator,
    cluster: Cluster,
    windows,
    horizon: float,
) -> None:
    """Schedule partition/heal pairs on ``sim`` (windows past horizon skipped)."""
    for window in windows:
        if window.start >= horizon:
            continue
        sim.schedule_at(
            window.start,
            lambda nodes=window.nodes: cluster.network.partition(nodes),
        )
        sim.schedule_at(
            min(window.end, horizon),
            lambda nodes=window.nodes: cluster.network.heal(nodes),
        )


@dataclass(frozen=True)
class TraceSimConfig:
    """Knobs of a history-model run."""

    horizon: float = 1000.0
    op_rate: float = 1.0  # mean operations per unit time
    read_fraction: float = 0.5
    repair_interval: float | None = None  # None disables anti-entropy
    block_length: int = 8
    wipe_on_repair: bool = False  # True models disk replacement
    stripes: int = 1  # logical blocks = stripes * k (volume-style runs)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.op_rate <= 0:
            raise ConfigurationError("op_rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.repair_interval is not None and self.repair_interval <= 0:
            raise ConfigurationError("repair_interval must be positive")
        if self.stripes < 1:
            raise ConfigurationError("stripes must be >= 1")


class TraceSimulation:
    """Drive TRAP-ERC stripes through a failure trace (instant path).

    With ``config.stripes == 1`` (default) this is the paper's
    single-stripe setting. With more stripes the run models a small
    volume: logical block b lives in stripe ``b // k`` as data block
    ``b % k`` under a rotated placement, all stripes share the cluster
    and the failure trace, and initialization encodes the whole volume
    in one ``MDSCode.encode_batch`` dispatch.
    """

    def __init__(
        self,
        n: int,
        k: int,
        quorum: TrapezoidQuorum,
        trace: FailureTrace,
        config: TraceSimConfig | None = None,
        workload: list[Operation] | None = None,
        rng=None,
    ) -> None:
        self.config = config if config is not None else TraceSimConfig()
        if trace.num_nodes != n:
            raise ConfigurationError(
                f"trace covers {trace.num_nodes} nodes but the stripe needs {n}"
            )
        self.rng = make_rng(rng)
        self.trace = trace
        self.cluster = Cluster(n)
        self.code = MDSCode(n, k)
        self.protocols: list[TrapErcProtocol] = []
        for s in range(self.config.stripes):
            layout = StripeLayout(n, k, tuple((b + s) % n for b in range(n)))
            self.protocols.append(
                TrapErcProtocol(
                    self.cluster, self.code, quorum,
                    layout=layout, stripe_id=f"trace-{s}",
                )
            )
        self.protocol = self.protocols[0]  # single-stripe handle
        self.repairs = [RepairService(proto) for proto in self.protocols]
        self.repair = self.repairs[0]
        self.workload = workload
        self.tally = OperationTally()
        # Oracle of acknowledged writes: logical block -> (version, payload).
        self._committed: dict[int, tuple[int, np.ndarray]] = {}

    @property
    def num_logical_blocks(self) -> int:
        """Addressable blocks of the run: stripes * k."""
        return self.config.stripes * self.code.k

    # ------------------------------------------------------------------ #

    def _initial_data(self) -> np.ndarray:
        return (
            self.rng.integers(
                0,
                256,
                size=(
                    self.config.stripes,
                    self.code.k,
                    self.config.block_length,
                ),
                dtype=np.int64,
            ).astype(np.uint8)
        )

    def _arrival_times(self) -> np.ndarray:
        """Poisson arrivals over [0, horizon]."""
        expected = self.config.op_rate * self.config.horizon
        draws = max(16, int(expected * 1.5) + 16)
        gaps = self.rng.exponential(1.0 / self.config.op_rate, size=draws)
        times = np.cumsum(gaps)
        while times[-1] < self.config.horizon:
            more = self.rng.exponential(1.0 / self.config.op_rate, size=draws)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        return times[times < self.config.horizon]

    def _ops(self, count: int) -> list[Operation]:
        if self.workload is not None:
            reps = -(-count // len(self.workload))
            return (self.workload * reps)[:count]
        return uniform_workload(
            count, self.num_logical_blocks, self.config.read_fraction, rng=self.rng
        )

    # ------------------------------------------------------------------ #

    def _execute(self, op: Operation) -> None:
        logical = op.block % self.num_logical_blocks
        protocol = self.protocols[logical // self.code.k]
        i = logical % self.code.k
        if op.kind is OpKind.READ:
            self.tally.reads_attempted += 1
            result = protocol.read_block(i)
            if result.success:
                self.tally.reads_succeeded += 1
                if result.case is not None and result.case.value == "decode":
                    self.tally.reads_decoded += 1
                else:
                    self.tally.reads_direct += 1
                committed = self._committed.get(logical)
                if committed is not None:
                    version, payload = committed
                    if result.version < version or (
                        result.version == version
                        and not np.array_equal(result.value, payload)
                    ):
                        self.tally.consistency_violations += 1
        else:
            self.tally.writes_attempted += 1
            value = write_payload(op.payload_seed, self.config.block_length)
            result = protocol.write_block(i, value)
            if result.success:
                self.tally.writes_succeeded += 1
                self._committed[logical] = (result.version, value.copy())

    def _repair_pass(self) -> None:
        for repair in self.repairs:
            self.tally.repairs += repair.sync_all()

    # ------------------------------------------------------------------ #

    def run(self) -> OperationTally:
        """Execute the full simulation; returns the operation tally."""
        sim = Simulator()
        data = self._initial_data()
        # One batched encode for the whole volume, then per-stripe loads.
        stripes = self.code.encode_batch(data)
        for s, protocol in enumerate(self.protocols):
            protocol.load_stripe(stripes[s])
            for i in range(self.code.k):
                self._committed[s * self.code.k + i] = (0, data[s, i].copy())

        schedule_trace(
            sim, self.cluster, self.trace, self.config.horizon,
            wipe_on_repair=self.config.wipe_on_repair,
        )

        times = self._arrival_times()
        for t, op in zip(times, self._ops(len(times))):
            sim.schedule_at(float(t), lambda o=op: self._execute(o))

        if self.config.repair_interval is not None:
            interval = self.config.repair_interval
            t = interval
            while t < self.config.horizon:
                sim.schedule_at(t, self._repair_pass)
                t += interval

        sim.run_until(self.config.horizon)
        self.tally.messages = self.cluster.network.stats.messages
        return self.tally


# --------------------------------------------------------------------- #
# event-driven closed-loop driver
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Knobs of an event-driven closed-loop run."""

    clients: int = 4
    think_time: float = 0.0
    horizon: float = 1000.0
    block_length: int = 8
    repair_interval: float | None = None
    wipe_on_repair: bool = False

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.think_time < 0:
            raise ConfigurationError("think_time must be >= 0")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.block_length < 1:
            raise ConfigurationError("block_length must be >= 1")
        if self.repair_interval is not None and self.repair_interval <= 0:
            raise ConfigurationError("repair_interval must be positive")


class ClosedLoopSimulation:
    """Closed-loop clients driving one plan-capable engine event-driven.

    ``engine`` must be bound to ``coordinator`` (an
    :class:`~repro.runtime.event.EventCoordinator` on ``cluster`` and its
    simulator) and expose ``read_plan(i)`` / ``write_plan(i, value)`` —
    all four registry engines qualify. The ``clients`` loops pull
    operations from the shared ``ops`` tape: each client submits its next
    operation ``think_time`` after the previous one completes, so up to
    ``clients`` operations are concurrently in flight while the optional
    ``trace`` (fail/repair churn) and ``partitions`` interleave with
    them mid-flight.

    Anti-entropy (``repair``) runs as instantaneous out-of-band
    maintenance passes every ``config.repair_interval`` — the repair
    traffic itself is not part of the latency experiment.

    The consistency check is real-time safe under concurrency: a read
    only counts as a violation when it returns a version older than the
    newest write that *completed before the read started*.
    """

    def __init__(
        self,
        cluster: Cluster,
        engine,
        coordinator: EventCoordinator,
        ops: list[Operation],
        config: ClosedLoopConfig | None = None,
        trace: FailureTrace | None = None,
        partitions: list[PartitionWindow] | None = None,
        repair: RepairService | None = None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.coordinator = coordinator
        self.sim = coordinator.sim
        self.ops = list(ops)
        self.config = config if config is not None else ClosedLoopConfig()
        self.trace = trace
        self.partitions = partitions or []
        self.repair = repair
        self.tally = LatencyTally()
        self._cursor = 0
        #: highest version whose write completed, per block (safety floor)
        self._committed: dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def _next_op(self) -> None:
        if self._cursor >= len(self.ops) or self.sim.now >= self.config.horizon:
            return  # this client retires
        op = self.ops[self._cursor]
        self._cursor += 1
        block = op.block
        if op.kind is OpKind.READ:
            self.tally.reads_attempted += 1
            floor = self._committed.get(block, 0)
            plan = self.engine.read_plan(block)
            self.coordinator.submit(
                plan, lambda result: self._read_done(result, floor)
            )
        else:
            self.tally.writes_attempted += 1
            value = write_payload(op.payload_seed, self.config.block_length)
            plan = self.engine.write_plan(block, value)
            self.coordinator.submit(
                plan, lambda result: self._write_done(result, block)
            )

    def _reschedule(self) -> None:
        self.sim.schedule_in(self.config.think_time, self._next_op)

    def _read_done(self, result, floor: int) -> None:
        if result.success:
            self.tally.reads_succeeded += 1
            self.tally.read_latencies.append(result.latency)
            if result.version < floor:
                self.tally.consistency_violations += 1
        else:
            self.tally.failed_read_latencies.append(result.latency)
        self._reschedule()

    def _write_done(self, result, block: int) -> None:
        if result.success:
            self.tally.writes_succeeded += 1
            self.tally.write_latencies.append(result.latency)
            self._committed[block] = max(
                self._committed.get(block, 0), result.version
            )
        else:
            self.tally.failed_write_latencies.append(result.latency)
        self._reschedule()

    def _repair_pass(self) -> None:
        self.tally.repairs += self.repair.sync_all()

    # ------------------------------------------------------------------ #

    def run(self) -> LatencyTally:
        """Run to completion (tape drained + in-flight ops resolved)."""
        config = self.config
        if self.trace is not None:
            schedule_trace(
                self.sim, self.cluster, self.trace, config.horizon,
                wipe_on_repair=config.wipe_on_repair,
            )
        schedule_partitions(self.sim, self.cluster, self.partitions, config.horizon)
        if self.repair is not None and config.repair_interval is not None:
            t = config.repair_interval
            while t < config.horizon:
                self.sim.schedule_at(t, self._repair_pass)
                t += config.repair_interval
        for _ in range(config.clients):
            self.sim.schedule_at(self.sim.now, self._next_op)
        self.sim.run()
        # Drain discipline: a fully-run queue leaves nothing outstanding,
        # but an aborted/partial run must not retain dead sessions.
        self.coordinator.shutdown()

        stats = self.cluster.network.stats
        self.tally.messages = stats.messages
        self.tally.messages_dropped = stats.messages_dropped
        self.tally.timeouts = stats.timeouts
        self.tally.retries = stats.retries
        self.tally.max_in_flight = self.coordinator.max_in_flight
        self.tally.round_messages = self.coordinator.round_messages.copy()
        return self.tally


class ShardedClosedLoopSimulation:
    """Closed-loop clients driving a :class:`ShardRouter`'s whole volume.

    The multi-shard counterpart of :class:`ClosedLoopSimulation`: the
    shared ``ops`` tape addresses the router's ``num_shards * k`` logical
    blocks, every operation is dispatched to its owning shard's
    coordinator, and all shards share one simulator, one cluster and —
    when per-node service queues are attached — the same contended
    servers. Up to ``clients`` operations are in flight across the
    volume at once; faultloads (churn / partitions) interleave
    mid-operation exactly as in the single-shard driver.

    The client loop issues the very same simulator calls in the very
    same order as :class:`ClosedLoopSimulation`, so a 1-shard router
    with no service queues replays the unsharded run bit-identically
    (results, message counts, trace hash — pinned by the property tests
    in ``tests/runtime/test_sharded_runtime.py``).

    ``run`` returns the aggregate :class:`LatencyTally`; per-shard
    tallies stay available as ``shard_tallies`` and pre-digested
    per-shard percentile rows via :meth:`shard_summaries`. Anti-entropy
    (``repairs``: one instant-path service per shard) runs as
    out-of-band maintenance passes, as in the single-shard driver.
    """

    def __init__(
        self,
        cluster: Cluster,
        router: ShardRouter,
        ops: list[Operation],
        config: ClosedLoopConfig | None = None,
        trace: FailureTrace | None = None,
        partitions: list[PartitionWindow] | None = None,
        repairs: list[RepairService] | None = None,
    ) -> None:
        self.cluster = cluster
        self.router = router
        self.sim = router.shards[0].coordinator.sim
        self.ops = list(ops)
        self.config = config if config is not None else ClosedLoopConfig()
        self.trace = trace
        self.partitions = partitions or []
        self.repairs = list(repairs) if repairs is not None else []
        self.tally = LatencyTally()
        self.shard_tallies = [LatencyTally() for _ in router.shards]
        self._cursor = 0
        self._in_flight = 0
        self._max_in_flight = 0
        #: highest version whose write completed, per logical block
        self._committed: dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def _next_op(self) -> None:
        if self._cursor >= len(self.ops) or self.sim.now >= self.config.horizon:
            return  # this client retires
        op = self.ops[self._cursor]
        self._cursor += 1
        block = op.block
        # One address-map lookup serves both the tally pick and the
        # dispatch (submit_read/submit_write would locate() again).
        shard, local = self.router.locate(block)
        tally = self.shard_tallies[shard.index]
        self._in_flight += 1
        self._max_in_flight = max(self._max_in_flight, self._in_flight)
        if op.kind is OpKind.READ:
            tally.reads_attempted += 1
            floor = self._committed.get(block, 0)
            shard.coordinator.submit(
                shard.engine.read_plan(local),
                lambda result: self._read_done(result, floor, tally),
            )
        else:
            tally.writes_attempted += 1
            value = write_payload(op.payload_seed, self.config.block_length)
            shard.coordinator.submit(
                shard.engine.write_plan(local, value),
                lambda result: self._write_done(result, block, tally),
            )

    def _reschedule(self) -> None:
        self._in_flight -= 1
        self.sim.schedule_in(self.config.think_time, self._next_op)

    def _read_done(self, result, floor: int, tally: LatencyTally) -> None:
        if result.success:
            tally.reads_succeeded += 1
            tally.read_latencies.append(result.latency)
            if result.version < floor:
                tally.consistency_violations += 1
        else:
            tally.failed_read_latencies.append(result.latency)
        self._reschedule()

    def _write_done(self, result, block: int, tally: LatencyTally) -> None:
        if result.success:
            tally.writes_succeeded += 1
            tally.write_latencies.append(result.latency)
            self._committed[block] = max(
                self._committed.get(block, 0), result.version
            )
        else:
            tally.failed_write_latencies.append(result.latency)
        self._reschedule()

    def _repair_pass(self) -> None:
        self.tally.repairs += sum(repair.sync_all() for repair in self.repairs)

    # ------------------------------------------------------------------ #

    def shard_summaries(self) -> list[dict]:
        """Per-shard percentile rows (the per-volume view of the run)."""
        rows = []
        for shard, tally in zip(self.router.shards, self.shard_tallies):
            rows.append(
                {
                    "shard": shard.index,
                    "reads": tally.reads_attempted,
                    "writes": tally.writes_attempted,
                    "read_availability": tally.read_availability().mean,
                    "write_availability": tally.write_availability().mean,
                    "operation_latency": tally.operation_percentiles(),
                    "read_latency": tally.read_percentiles(),
                    "write_latency": tally.write_percentiles(),
                }
            )
        return rows

    def run(self) -> LatencyTally:
        """Run to completion; returns the aggregate tally."""
        config = self.config
        if self.trace is not None:
            schedule_trace(
                self.sim, self.cluster, self.trace, config.horizon,
                wipe_on_repair=config.wipe_on_repair,
            )
        schedule_partitions(self.sim, self.cluster, self.partitions, config.horizon)
        if self.repairs and config.repair_interval is not None:
            t = config.repair_interval
            while t < config.horizon:
                self.sim.schedule_at(t, self._repair_pass)
                t += config.repair_interval
        for _ in range(config.clients):
            self.sim.schedule_at(self.sim.now, self._next_op)
        self.sim.run()
        for shard in self.router.shards:
            shard.coordinator.shutdown()

        for shard_tally in self.shard_tallies:
            self.tally.merge(shard_tally)
        stats = self.cluster.network.stats
        self.tally.messages = stats.messages
        self.tally.messages_dropped = stats.messages_dropped
        self.tally.timeouts = stats.timeouts
        self.tally.retries = stats.retries
        self.tally.max_in_flight = self._max_in_flight
        self.tally.round_messages = self.router.round_messages()
        return self.tally
