"""Comparative protocol evaluation on identical failure schedules.

Fair cross-protocol comparison requires every engine to see the *same*
failures and the same operation sequence. This module generates a shared
schedule (per-step down-sets plus an op tape) and replays it against any
set of protocol engines, tallying availability and message costs — the
machinery behind the ``comparison`` scenario of the ``repro.api``
facade, ``examples/protocol_comparison.py`` and the baseline benchmarks,
exposed as a reusable library.

Reproducibility: :func:`make_schedule` derives everything (down-sets, op
kinds, per-write payload seeds) from its ``rng`` argument — an int seed
or Generator, coerced via :func:`repro.cluster.rng.make_rng` — and
:func:`run_comparison` derives each write payload from the schedule's
embedded ``payload_seed``, so one seed pins the entire experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError

__all__ = ["ScheduleStep", "ComparisonResult", "make_schedule", "run_comparison"]


@dataclass(frozen=True)
class ScheduleStep:
    """One step: which nodes are down, what operation runs."""

    down: tuple[int, ...]
    is_read: bool
    block: int
    payload_seed: int


@dataclass
class ComparisonResult:
    """Per-protocol tallies over one shared schedule."""

    name: str
    reads: int = 0
    reads_ok: int = 0
    writes: int = 0
    writes_ok: int = 0
    read_messages: int = 0
    write_messages: int = 0

    @property
    def read_availability(self) -> float:
        return self.reads_ok / self.reads if self.reads else 1.0

    @property
    def write_availability(self) -> float:
        return self.writes_ok / self.writes if self.writes else 1.0

    @property
    def messages_per_read(self) -> float:
        return self.read_messages / self.reads if self.reads else 0.0

    @property
    def messages_per_write(self) -> float:
        return self.write_messages / self.writes if self.writes else 0.0


def make_schedule(
    steps: int,
    num_nodes: int,
    num_blocks: int,
    *,
    max_down: int = 2,
    read_fraction: float = 0.5,
    rng=None,
) -> list[ScheduleStep]:
    """A shared random schedule of failures and operations."""
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if not 0 <= max_down <= num_nodes:
        raise ConfigurationError(
            f"max_down must be in [0, {num_nodes}], got {max_down}"
        )
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError("read_fraction must be in [0, 1]")
    rng = make_rng(rng)
    schedule = []
    for _ in range(steps):
        count = int(rng.integers(0, max_down + 1))
        down = tuple(sorted(rng.choice(num_nodes, size=count, replace=False).tolist()))
        schedule.append(
            ScheduleStep(
                down=down,
                is_read=bool(rng.random() < read_fraction),
                block=int(rng.integers(0, num_blocks)),
                payload_seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return schedule


def run_comparison(
    engines: dict[str, tuple[Cluster, object]],
    schedule: list[ScheduleStep],
    block_length: int,
    repair_fns: dict[str, object] | None = None,
) -> dict[str, ComparisonResult]:
    """Replay ``schedule`` against every (cluster, engine) pair.

    Engines must expose ``read_block(i)`` and ``write_block(i, value)``
    returning result objects with ``success`` and ``messages`` fields
    (all the protocol engines in :mod:`repro.core` qualify); schedules
    should be built with a ``num_blocks`` valid for every engine.

    ``repair_fns`` optionally maps engine names to zero-argument
    anti-entropy callables, invoked between failure epochs while the
    whole cluster is healthy. Without one, TRAP-ERC's write availability
    collapses under repeated failures (stale parities reject deltas —
    see EXPERIMENTS.md), so comparative studies should either provide it
    or interpret the collapse as part of the result.
    """
    if block_length < 1:
        raise ConfigurationError("block_length must be >= 1")
    repair_fns = repair_fns or {}
    results: dict[str, ComparisonResult] = {}
    for name, (cluster, engine) in engines.items():
        tally = ComparisonResult(name=name)
        repair = repair_fns.get(name)
        for step in schedule:
            cluster.recover_all()
            if repair is not None:
                repair()
            cluster.fail_many(step.down)
            if step.is_read:
                r = engine.read_block(step.block)
                tally.reads += 1
                tally.reads_ok += bool(r.success)
                tally.read_messages += r.messages
            else:
                payload_rng = make_rng(step.payload_seed)
                value = payload_rng.integers(
                    0, 256, block_length, dtype=np.int64
                ).astype(np.uint8)
                r = engine.write_block(step.block, value)
                tally.writes += 1
                tally.writes_ok += bool(r.success)
                tally.write_messages += r.messages
        cluster.recover_all()
        results[name] = tally
    return results
