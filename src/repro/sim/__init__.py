"""Simulation and measurement layer (DESIGN.md S7).

Three evaluation instruments of increasing fidelity:

* :mod:`repro.sim.montecarlo` — vectorized snapshot-model predicate
  sampling (validates the closed forms of :mod:`repro.analysis`),
* :mod:`repro.sim.protocol_mc` — per-trial execution of the real protocol
  engines (validates that the code implements the analyzed predicates),
* :mod:`repro.sim.trace_sim` — discrete-event history-model runs with
  staleness and repair (quantifies what the paper's model idealizes away),
  in two flavours: the instant-path :class:`TraceSimulation` and the
  event-driven :class:`ClosedLoopSimulation` (concurrent in-flight
  operations, quorum-wait latency percentiles, faultloads mid-operation).
"""

from repro.sim.metrics import (
    LatencyTally,
    MCEstimate,
    OperationTally,
    percentile_summary,
)
from repro.sim.montecarlo import (
    level_membership_matrix,
    mc_read_availability_erc,
    mc_read_availability_fr,
    mc_write_availability,
)
from repro.sim.comparative import (
    ComparisonResult,
    ScheduleStep,
    make_schedule,
    run_comparison,
)
from repro.sim.protocol_mc import ProtocolMonteCarlo
from repro.sim.saturation import (
    SaturationPoint,
    knee_clients,
    queue_summary,
    saturation_sweep,
)
from repro.sim.sweep import SweepRecord, availability_sweep, records_to_csv
from repro.sim.trace_sim import (
    ClosedLoopConfig,
    ClosedLoopSimulation,
    PartitionWindow,
    ShardedClosedLoopSimulation,
    TraceSimConfig,
    TraceSimulation,
    schedule_partitions,
    schedule_trace,
)
from repro.sim.workloads import (
    OpKind,
    Operation,
    sequential_workload,
    uniform_workload,
    vm_disk_workload,
    write_payload,
    zipf_workload,
)

__all__ = [
    "MCEstimate",
    "OperationTally",
    "LatencyTally",
    "percentile_summary",
    "level_membership_matrix",
    "mc_write_availability",
    "mc_read_availability_fr",
    "mc_read_availability_erc",
    "ProtocolMonteCarlo",
    "ScheduleStep",
    "ComparisonResult",
    "make_schedule",
    "run_comparison",
    "SweepRecord",
    "availability_sweep",
    "records_to_csv",
    "TraceSimConfig",
    "TraceSimulation",
    "ClosedLoopConfig",
    "ClosedLoopSimulation",
    "ShardedClosedLoopSimulation",
    "PartitionWindow",
    "schedule_trace",
    "schedule_partitions",
    "SaturationPoint",
    "saturation_sweep",
    "knee_clients",
    "queue_summary",
    "OpKind",
    "Operation",
    "uniform_workload",
    "write_payload",
    "sequential_workload",
    "zipf_workload",
    "vm_disk_workload",
]
