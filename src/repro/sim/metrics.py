"""Estimation metrics: Monte-Carlo estimates, tallies, latency percentiles.

All Monte-Carlo entry points return :class:`MCEstimate` so that tests and
benchmarks can assert agreement with closed forms *statistically* (via the
confidence interval) instead of with brittle fixed tolerances.
:class:`OperationTally` counts the legacy (instant-path) history-model
runs; :class:`LatencyTally` is its event-path counterpart, adding the
p50/p95/p99 operation-latency percentiles and per-round message counts
the event-driven runtime makes measurable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "MCEstimate",
    "OperationTally",
    "LatencySamples",
    "LatencyTally",
    "percentile_summary",
]

_Z95 = 1.959963984540054  # standard normal 97.5% quantile


@dataclass(frozen=True)
class MCEstimate:
    """A Bernoulli-proportion estimate from ``trials`` samples."""

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        if not 0 <= self.successes <= self.trials:
            raise ConfigurationError(
                f"successes {self.successes} out of range [0, {self.trials}]"
            )

    @property
    def mean(self) -> float:
        return self.successes / self.trials

    @property
    def stderr(self) -> float:
        m = self.mean
        return float(np.sqrt(m * (1.0 - m) / self.trials))

    def ci(self, z: float = _Z95) -> tuple[float, float]:
        """Wilson score interval (robust near 0 and 1) at ``z`` sigmas."""
        n = self.trials
        m = self.mean
        z2 = z**2
        denom = 1.0 + z2 / n
        center = (m + z2 / (2 * n)) / denom
        half = (z * np.sqrt(m * (1.0 - m) / n + z2 / (4 * n * n))) / denom
        return (max(0.0, center - half), min(1.0, center + half))

    def ci95(self) -> tuple[float, float]:
        """The conventional 95% Wilson interval."""
        return self.ci(_Z95)

    def contains(self, value: float, z: float = _Z95) -> bool:
        """True iff ``value`` lies in the z-sigma confidence interval.

        Statistical test suites should pass a generous ``z`` (e.g. 4):
        with dozens of 95% intervals checked per run, spurious 2-sigma
        misses are expected by construction.
        """
        lo, hi = self.ci(z)
        return lo <= value <= hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.ci95()
        return f"{self.mean:.4f} [{lo:.4f}, {hi:.4f}] (n={self.trials})"


@dataclass
class OperationTally:
    """Counters for protocol-level simulations (history model)."""

    reads_attempted: int = 0
    reads_succeeded: int = 0
    reads_direct: int = 0
    reads_decoded: int = 0
    writes_attempted: int = 0
    writes_succeeded: int = 0
    consistency_violations: int = 0
    repairs: int = 0
    messages: int = 0

    def read_availability(self) -> MCEstimate:
        return MCEstimate(self.reads_succeeded, max(1, self.reads_attempted))

    def write_availability(self) -> MCEstimate:
        return MCEstimate(self.writes_succeeded, max(1, self.writes_attempted))

    def decode_fraction(self) -> float:
        """Share of successful reads that needed reconstruction."""
        if self.reads_succeeded == 0:
            return 0.0
        return self.reads_decoded / self.reads_succeeded

    def summary(self) -> dict[str, float]:
        return {
            "read_availability": self.read_availability().mean,
            "write_availability": self.write_availability().mean,
            "decode_fraction": self.decode_fraction(),
            "consistency_violations": float(self.consistency_violations),
            "repairs": float(self.repairs),
            "messages": float(self.messages),
        }


class LatencySamples:
    """Append-mostly float sample buffer backed by chunked numpy storage.

    List-compatible on the surface the drivers and tests use —
    ``append`` / ``extend`` / ``len`` / iteration / ``max`` / ``+`` /
    ``==`` — but samples land in fixed-size ``float64`` chunks instead
    of a Python list, so a million-op run stores 8 bytes per sample
    (not a boxed float plus a pointer) and :func:`percentile_summary`
    gets a zero-copy concatenated array instead of re-boxing every
    element through ``list()``.
    """

    __slots__ = ("_chunks", "_tail", "_fill")

    _CHUNK = 4096

    def __init__(self, samples=None) -> None:
        self._chunks: list[np.ndarray] = []  # full chunks, immutable
        self._tail = np.empty(self._CHUNK, dtype=np.float64)
        self._fill = 0  # occupied slots of the tail chunk
        if samples is not None:
            self.extend(samples)

    def append(self, value: float) -> None:
        if self._fill == self._CHUNK:
            self._chunks.append(self._tail)
            self._tail = np.empty(self._CHUNK, dtype=np.float64)
            self._fill = 0
        self._tail[self._fill] = value
        self._fill += 1

    def extend(self, values) -> None:
        if isinstance(values, LatencySamples):
            arr = values.as_array()
        else:
            arr = np.asarray(list(values), dtype=np.float64)
        pos, n = 0, arr.size
        while pos < n:
            if self._fill == self._CHUNK:
                self._chunks.append(self._tail)
                self._tail = np.empty(self._CHUNK, dtype=np.float64)
                self._fill = 0
            take = min(self._CHUNK - self._fill, n - pos)
            self._tail[self._fill : self._fill + take] = arr[pos : pos + take]
            self._fill += take
            pos += take

    def as_array(self) -> np.ndarray:
        """All samples, in insertion order, as one float64 array."""
        parts = self._chunks + [self._tail[: self._fill]]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def __len__(self) -> int:
        return len(self._chunks) * self._CHUNK + self._fill

    def __iter__(self):
        for chunk in self._chunks:
            yield from chunk.tolist()
        yield from self._tail[: self._fill].tolist()

    def __add__(self, other) -> "LatencySamples":
        merged = LatencySamples()
        merged.extend(self)
        merged.extend(other)
        return merged

    def __eq__(self, other) -> bool:
        if isinstance(other, (LatencySamples, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencySamples({list(self)!r})"


def percentile_summary(samples) -> dict[str, float]:
    """p50/p95/p99 (plus mean and count) of a latency sample list.

    Deterministic given the samples (linear interpolation); all-NaN-free.
    Empty samples produce zeros so JSON consumers need no special case.
    :class:`LatencySamples` inputs take the zero-copy array fast path.
    """
    if isinstance(samples, LatencySamples):
        arr = samples.as_array()
    else:
        arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
    }


@dataclass
class LatencyTally:
    """Counters + latency samples for event-driven (closed-loop) runs.

    ``read_latencies``/``write_latencies`` hold per-operation virtual
    seconds for *successful* operations; failed operations are tallied
    separately (their latency is dominated by the timeout policy).
    ``round_messages`` counts messages by protocol round kind
    (version-query / payload / write / write-back) — the per-round cost
    structure of Algorithms 1-2 under a real fan-out.
    """

    reads_attempted: int = 0
    reads_succeeded: int = 0
    writes_attempted: int = 0
    writes_succeeded: int = 0
    consistency_violations: int = 0
    repairs: int = 0
    messages: int = 0
    messages_dropped: int = 0
    timeouts: int = 0
    retries: int = 0
    max_in_flight: int = 0
    read_latencies: LatencySamples = field(default_factory=LatencySamples)
    write_latencies: LatencySamples = field(default_factory=LatencySamples)
    failed_read_latencies: LatencySamples = field(default_factory=LatencySamples)
    failed_write_latencies: LatencySamples = field(default_factory=LatencySamples)
    round_messages: Counter = field(default_factory=Counter)

    def read_availability(self) -> MCEstimate:
        return MCEstimate(self.reads_succeeded, max(1, self.reads_attempted))

    def write_availability(self) -> MCEstimate:
        return MCEstimate(self.writes_succeeded, max(1, self.writes_attempted))

    def read_percentiles(self) -> dict[str, float]:
        return percentile_summary(self.read_latencies)

    def write_percentiles(self) -> dict[str, float]:
        return percentile_summary(self.write_latencies)

    def operation_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 over all successful operations (reads + writes)."""
        return percentile_summary(self.read_latencies + self.write_latencies)

    def merge(self, other: "LatencyTally") -> None:
        """Fold another tally (e.g. one shard's) into this aggregate."""
        self.reads_attempted += other.reads_attempted
        self.reads_succeeded += other.reads_succeeded
        self.writes_attempted += other.writes_attempted
        self.writes_succeeded += other.writes_succeeded
        self.consistency_violations += other.consistency_violations
        self.repairs += other.repairs
        self.read_latencies.extend(other.read_latencies)
        self.write_latencies.extend(other.write_latencies)
        self.failed_read_latencies.extend(other.failed_read_latencies)
        self.failed_write_latencies.extend(other.failed_write_latencies)
        self.round_messages.update(other.round_messages)

    def summary(self) -> dict:
        return {
            "read_availability": self.read_availability().mean,
            "write_availability": self.write_availability().mean,
            "read_latency": self.read_percentiles(),
            "write_latency": self.write_percentiles(),
            "failed_read_latency": percentile_summary(self.failed_read_latencies),
            "failed_write_latency": percentile_summary(self.failed_write_latencies),
            "consistency_violations": float(self.consistency_violations),
            "repairs": float(self.repairs),
            "messages": float(self.messages),
            "messages_dropped": float(self.messages_dropped),
            "timeouts": float(self.timeouts),
            "retries": float(self.retries),
            "max_in_flight": float(self.max_in_flight),
            "round_messages": {k: int(v) for k, v in sorted(self.round_messages.items())},
        }
