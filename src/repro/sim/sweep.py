"""Experiment sweeps: evaluate protocols across a parameter grid.

A small declarative layer used by benchmarks, examples and the
``repro.api`` facade to produce comparison tables: sweep node
availability (and optionally the quorum parameter w) across evaluation
methods, returning tidy records that render to CSV.

Reproducibility: the ``rng`` argument (an int seed or Generator, coerced
via :func:`repro.cluster.rng.make_rng`) is the single randomness source.
Each (p, metric) Monte-Carlo estimate runs on its own
:func:`~repro.cluster.rng.spawn_rngs` child stream assigned by grid
position, so a given seed reproduces identical estimates for the
existing entries even when the ``ps`` grid is *extended* at the end —
the property the spec-driven :class:`~repro.api.runner.ScenarioRunner`
relies on. (Reordering the grid reorders the stream assignment.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.availability import (
    read_availability_erc,
    read_availability_fr,
    write_availability,
)
from repro.analysis.exact import exact_read_erc
from repro.cluster.rng import make_rng, spawn_rngs
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.montecarlo import mc_read_availability_erc, mc_write_availability

__all__ = ["SweepRecord", "availability_sweep", "records_to_csv"]


@dataclass(frozen=True)
class SweepRecord:
    """One (p, metric, method) evaluation."""

    p: float
    metric: str  # "write" | "read_fr" | "read_erc"
    method: str  # "closed_form" | "exact" | "monte_carlo"
    value: float


def availability_sweep(
    quorum: TrapezoidQuorum,
    n: int,
    k: int,
    ps,
    *,
    mc_trials: int = 0,
    rng=None,
) -> list[SweepRecord]:
    """Evaluate write/read availability across ``ps`` with every method.

    ``mc_trials = 0`` disables the Monte-Carlo column (closed forms and
    exact enumeration are deterministic and fast).
    """
    ps = [float(p) for p in np.atleast_1d(np.asarray(ps, dtype=np.float64))]
    if mc_trials < 0:
        raise ConfigurationError(f"mc_trials must be >= 0, got {mc_trials}")
    # One independent child stream per (p, metric) MC estimate: values
    # depend only on the seed, not on the position within the grid.
    mc_rngs = iter(spawn_rngs(make_rng(rng), 2 * len(ps))) if mc_trials else None
    # The deterministic columns are all vectorized over p, and the exact
    # column's occupancy tables are p-independent: evaluate each method
    # once across the whole grid instead of once per grid point.
    p_grid = np.asarray(ps, dtype=np.float64)
    write_vals = write_availability(quorum, p_grid)
    read_fr_vals = read_availability_fr(quorum, p_grid)
    read_erc_vals = read_availability_erc(quorum, n, k, p_grid)
    exact_vals = exact_read_erc(quorum, n, k, p_grid)
    records: list[SweepRecord] = []
    for i, p in enumerate(ps):
        records.append(SweepRecord(p, "write", "closed_form", float(write_vals[i])))
        records.append(
            SweepRecord(p, "read_fr", "closed_form", float(read_fr_vals[i]))
        )
        records.append(
            SweepRecord(p, "read_erc", "closed_form", float(read_erc_vals[i]))
        )
        records.append(SweepRecord(p, "read_erc", "exact", float(exact_vals[i])))
        if mc_trials:
            records.append(
                SweepRecord(
                    p,
                    "write",
                    "monte_carlo",
                    mc_write_availability(
                        quorum, p, trials=mc_trials, rng=next(mc_rngs)
                    ).mean,
                )
            )
            records.append(
                SweepRecord(
                    p,
                    "read_erc",
                    "monte_carlo",
                    mc_read_availability_erc(
                        quorum, n, k, p, trials=mc_trials, rng=next(mc_rngs)
                    ).mean,
                )
            )
    return records


def records_to_csv(records) -> str:
    """Render sweep records as a CSV string (header included)."""
    lines = ["p,metric,method,value"]
    for rec in records:
        lines.append(f"{rec.p},{rec.metric},{rec.method},{rec.value:.6f}")
    return "\n".join(lines) + "\n"
