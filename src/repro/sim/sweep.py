"""Experiment sweeps: evaluate protocols across a parameter grid.

A small declarative layer used by benchmarks, examples and the
``repro.api`` facade to produce comparison tables: sweep node
availability (and optionally the quorum parameter w) across evaluation
methods, returning tidy records that render to CSV.

Reproducibility: the ``rng`` argument (an int seed or Generator, coerced
via :func:`repro.cluster.rng.make_rng`) is the single randomness source.
Each (p, metric) Monte-Carlo estimate runs on its own
:func:`~repro.cluster.rng.spawn_rngs` child stream assigned by grid
position, so a given seed reproduces identical estimates for the
existing entries even when the ``ps`` grid is *extended* at the end —
the property the spec-driven :class:`~repro.api.runner.ScenarioRunner`
relies on. (Reordering the grid reorders the stream assignment.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.availability import (
    read_availability_erc,
    read_availability_fr,
    write_availability,
)
from repro.analysis.exact import exact_read_erc
from repro.cluster.rng import make_rng, spawn_rngs
from repro.errors import ConfigurationError
from repro.parallel import ParallelExecutor
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.sim.montecarlo import mc_read_availability_erc, mc_write_availability

__all__ = ["SweepRecord", "availability_sweep", "records_to_csv"]


@dataclass(frozen=True)
class SweepRecord:
    """One (p, metric, method) evaluation."""

    p: float
    metric: str  # "write" | "read_fr" | "read_erc"
    method: str  # "closed_form" | "exact" | "monte_carlo"
    value: float


def _mc_column_task(payload: dict) -> float:
    """One (p, metric) Monte-Carlo column — the sweep's unit of fan-out.

    The payload carries the (picklable, inert) quorum value object and
    the column's pre-spawned child stream; the same function runs inline
    on the serial path, so parallel results are byte-identical.
    """
    quorum = payload["quorum"]
    p = payload["p"]
    trials = payload["trials"]
    rng = payload["rng"]
    if payload["metric"] == "write":
        return mc_write_availability(quorum, p, trials=trials, rng=rng).mean
    return mc_read_availability_erc(
        quorum, payload["n"], payload["k"], p, trials=trials, rng=rng
    ).mean


def availability_sweep(
    quorum: TrapezoidQuorum,
    n: int,
    k: int,
    ps,
    *,
    mc_trials: int = 0,
    rng=None,
    jobs: int = 0,
    executor: ParallelExecutor | None = None,
) -> list[SweepRecord]:
    """Evaluate write/read availability across ``ps`` with every method.

    ``mc_trials = 0`` disables the Monte-Carlo column (closed forms and
    exact enumeration are deterministic and fast). ``jobs`` fans the MC
    columns across worker processes (``executor`` shares an existing
    pool instead); each (p, metric) column owns the child stream at its
    grid position, so any worker count reproduces the serial bytes.
    """
    ps = [float(p) for p in np.atleast_1d(np.asarray(ps, dtype=np.float64))]
    if mc_trials < 0:
        raise ConfigurationError(f"mc_trials must be >= 0, got {mc_trials}")
    # One independent child stream per (p, metric) MC estimate,
    # pre-materialized and indexed by grid position: values depend only
    # on the seed and the position, never on evaluation order (a lazy
    # iterator here would skew every later stream if a column raised).
    mc_rngs = spawn_rngs(make_rng(rng), 2 * len(ps)) if mc_trials else []
    # The deterministic columns are all vectorized over p, and the exact
    # column's occupancy tables are p-independent: evaluate each method
    # once across the whole grid instead of once per grid point.
    p_grid = np.asarray(ps, dtype=np.float64)
    write_vals = write_availability(quorum, p_grid)
    read_fr_vals = read_availability_fr(quorum, p_grid)
    read_erc_vals = read_availability_erc(quorum, n, k, p_grid)
    exact_vals = exact_read_erc(quorum, n, k, p_grid)
    mc_values: list[float] = []
    if mc_trials:
        payloads = []
        for i, p in enumerate(ps):
            for j, metric in enumerate(("write", "read_erc")):
                payloads.append(
                    {
                        "quorum": quorum,
                        "n": n,
                        "k": k,
                        "p": p,
                        "metric": metric,
                        "trials": mc_trials,
                        "rng": mc_rngs[2 * i + j],
                    }
                )
        owned = executor is None
        pool = ParallelExecutor(jobs) if owned else executor
        try:
            mc_values = pool.map(_mc_column_task, payloads)
        finally:
            if owned:
                pool.close()
    records: list[SweepRecord] = []
    for i, p in enumerate(ps):
        records.append(SweepRecord(p, "write", "closed_form", float(write_vals[i])))
        records.append(
            SweepRecord(p, "read_fr", "closed_form", float(read_fr_vals[i]))
        )
        records.append(
            SweepRecord(p, "read_erc", "closed_form", float(read_erc_vals[i]))
        )
        records.append(SweepRecord(p, "read_erc", "exact", float(exact_vals[i])))
        if mc_trials:
            records.append(
                SweepRecord(p, "write", "monte_carlo", mc_values[2 * i])
            )
            records.append(
                SweepRecord(p, "read_erc", "monte_carlo", mc_values[2 * i + 1])
            )
    return records


def records_to_csv(records) -> str:
    """Render sweep records as a CSV string (header included)."""
    lines = ["p,metric,method,value"]
    for rec in records:
        lines.append(f"{rec.p},{rec.metric},{rec.method},{rec.value:.6f}")
    return "\n".join(lines) + "\n"
