"""Weighted voting (Gifford 1979): the general threshold quorum scheme.

Each node carries a vote weight; a read quorum gathers at least r votes
and a write quorum at least w votes, with

    r + w > total      (read/write intersection, the paper's eq. 2)
    2w    > total      (write/write intersection, the paper's eq. 3)

Majority is the special case of unit weights and r = w = floor(n/2) + 1;
ROWA is r = 1, w = total. The scheme generalizes the threshold ("r"
notation) the paper uses when discussing the trapezoid in the "general
threshold scheme context".
"""

from __future__ import annotations



import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import CountPredicate, QuorumSystem

__all__ = ["WeightedVotingSystem"]


class WeightedVotingSystem(QuorumSystem):
    """Vote-threshold quorums over weighted nodes."""

    def __init__(self, weights, r: int, w: int) -> None:
        self.weights = [int(x) for x in weights]
        if not self.weights:
            raise ConfigurationError("need at least one node")
        if any(x < 0 for x in self.weights):
            raise ConfigurationError("weights must be non-negative")
        total = sum(self.weights)
        if total < 1:
            raise ConfigurationError("total votes must be >= 1")
        if not 1 <= r <= total or not 1 <= w <= total:
            raise ConfigurationError(
                f"thresholds must be in [1, {total}], got r={r}, w={w}"
            )
        if r + w <= total:
            raise ConfigurationError(
                f"need r + w > total votes for RQ/WQ intersection "
                f"(r={r}, w={w}, total={total})"
            )
        if 2 * w <= total:
            raise ConfigurationError(
                f"need 2w > total votes for WQ/WQ intersection (w={w}, total={total})"
            )
        self.size = len(self.weights)
        self.total_votes = total
        self.r = int(r)
        self.w = int(w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedVotingSystem(weights={self.weights}, r={self.r}, w={self.w})"
        )

    @classmethod
    def majority(cls, size: int) -> "WeightedVotingSystem":
        """Unit weights, r = w = floor(size/2) + 1 (Thomas's scheme)."""
        t = size // 2 + 1
        return cls([1] * size, t, t)

    @classmethod
    def rowa(cls, size: int) -> "WeightedVotingSystem":
        """Unit weights, r = 1, w = size (Read One Write All)."""
        return cls([1] * size, 1, size)

    # ------------------------------------------------------------------ #

    def _votes(self, subset: frozenset[int]) -> int:
        return sum(self.weights[i] for i in subset)

    def is_read_quorum(self, subset) -> bool:
        return self._votes(self._check_positions(subset)) >= self.r

    def is_write_quorum(self, subset) -> bool:
        return self._votes(self._check_positions(subset)) >= self.w

    def as_level_thresholds(self, kind: str) -> CountPredicate | None:
        """Uniform positive weights reduce to a cardinality threshold:
        ``v * count >= votes`` iff ``count >= ceil(votes / v)``. Genuinely
        heterogeneous weights stay on the enumeration/DP paths (which
        subset holds the votes then matters, not just how many nodes)."""
        super().as_level_thresholds(kind)  # validates kind
        weight = self.weights[0]
        if weight < 1 or any(x != weight for x in self.weights):
            return None
        votes = self.r if kind == "read" else self.w
        return CountPredicate(
            (self.size,), (-(-votes // weight),), "all"
        )

    def _find(self, alive: set[int], threshold: int) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        # Greedy: heaviest nodes first gives a minimal-cardinality quorum.
        ordered = sorted(alive, key=lambda i: -self.weights[i])
        chosen: list[int] = []
        votes = 0
        for i in ordered:
            if votes >= threshold:
                break
            if self.weights[i] == 0:
                continue
            chosen.append(i)
            votes += self.weights[i]
        if votes >= threshold:
            return frozenset(chosen)
        return None

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        return self._find(alive, self.r)

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        return self._find(alive, self.w)

    # ------------------------------------------------------------------ #

    def _threshold_availability(self, p, threshold: int) -> np.ndarray:
        """P(total alive votes >= threshold) by dynamic programming.

        Weighted sums of independent Bernoullis have no closed form, so
        build the exact vote-total distribution with a convolution DP —
        O(size * total_votes), fine for realistic cluster sizes.
        """
        p = np.asarray(p, dtype=np.float64)
        scalar = p.ndim == 0
        p = np.atleast_1d(p)
        # dist[v] = P(alive vote total == v), per p value.
        dist = np.zeros((self.total_votes + 1, p.size))
        dist[0] = 1.0
        for weight in self.weights:
            if weight == 0:
                continue
            shifted = np.zeros_like(dist)
            shifted[weight:] = dist[: self.total_votes + 1 - weight]
            dist = dist * (1.0 - p)[None, :] + shifted * p[None, :]
        out = dist[threshold:].sum(axis=0)
        return out[0] if scalar else out

    def read_availability(self, p) -> np.ndarray:
        return self._threshold_availability(p, self.r)

    def write_availability(self, p) -> np.ndarray:
        return self._threshold_availability(p, self.w)
