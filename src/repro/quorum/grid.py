"""Grid quorum protocol (Cheung, Ammar, Ahamad 1990 — the paper's ref. [4]).

Nodes form an R x C grid (position = row * C + col). A read quorum covers
one node from every column; a write quorum is one *complete* column plus
one node from every other column. Any write's full column meets any read's
column cover, and two writes' full columns each intersect the other's
cover, giving both intersection properties.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem

__all__ = ["GridSystem"]


class GridSystem(QuorumSystem):
    """R x C grid quorums."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"grid needs rows, cols >= 1, got {rows} x {cols}"
            )
        self.rows = rows
        self.cols = cols
        self.size = rows * cols

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridSystem(rows={self.rows}, cols={self.cols})"

    def _column(self, pos: int) -> int:
        return pos % self.cols

    def column_positions(self, col: int) -> list[int]:
        return [r * self.cols + col for r in range(self.rows)]

    def is_read_quorum(self, subset) -> bool:
        subset = self._check_positions(subset)
        covered = {self._column(p) for p in subset}
        return len(covered) == self.cols

    def is_write_quorum(self, subset) -> bool:
        subset = self._check_positions(subset)
        if not self.is_read_quorum(subset):
            return False
        for col in range(self.cols):
            if all(p in subset for p in self.column_positions(col)):
                return True
        return False

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        chosen = []
        for col in range(self.cols):
            members = [p for p in self.column_positions(col) if p in alive]
            if not members:
                return None
            chosen.append(members[0])
        return frozenset(chosen)

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        full_col = None
        for col in range(self.cols):
            if all(p in alive for p in self.column_positions(col)):
                full_col = col
                break
        if full_col is None:
            return None
        chosen = set(self.column_positions(full_col))
        for col in range(self.cols):
            if col == full_col:
                continue
            members = [p for p in self.column_positions(col) if p in alive]
            if not members:
                return None
            chosen.add(members[0])
        return frozenset(chosen)

    def write_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        col_full = p**self.rows
        col_any = 1.0 - (1.0 - p) ** self.rows
        # all columns covered, minus the case where none is fully alive
        return col_any**self.cols - (col_any - col_full) ** self.cols

    def read_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return (1.0 - (1.0 - p) ** self.rows) ** self.cols
