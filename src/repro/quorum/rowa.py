"""ROWA: Read One, Write All.

The baseline the paper contrasts quorum systems against: any single node
serves a read, every node must acknowledge a write. Reads are maximally
available and cheap; a single failed node blocks all writes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import CountPredicate, QuorumSystem

__all__ = ["RowaSystem"]


class RowaSystem(QuorumSystem):
    """Read quorum = any one node; write quorum = all nodes."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowaSystem(size={self.size})"

    def is_write_quorum(self, subset) -> bool:
        return len(self._check_positions(subset)) == self.size

    def is_read_quorum(self, subset) -> bool:
        return len(self._check_positions(subset)) >= 1

    def as_level_thresholds(self, kind: str) -> CountPredicate:
        """Cardinality thresholds: all nodes for writes, one for reads."""
        super().as_level_thresholds(kind)  # validates kind
        threshold = self.size if kind == "write" else 1
        return CountPredicate((self.size,), (threshold,), "all")

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        if len(alive) < self.size:
            return None
        return frozenset(alive)

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        if not alive:
            return None
        return frozenset([min(alive)])

    def write_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return p**self.size

    def read_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return 1.0 - (1.0 - p) ** self.size
