"""Tree quorum protocol (Agrawal & El Abbadi 1991 — the paper's ref. [1]).

Nodes are the vertices of a complete binary tree (breadth-first numbering,
root = 0). A quorum for the subtree rooted at v is either

* {v} together with a quorum of *one* of v's child subtrees, or
* (bypassing a failed v) quorums of *both* child subtrees;

a leaf's quorum is the leaf itself. Any two such quorums intersect, so the
same structure serves reads and writes (the protocol was designed for
mutual exclusion / replicated data).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem

__all__ = ["TreeSystem"]


class TreeSystem(QuorumSystem):
    """Complete binary tree of the given height (height 0 = single node)."""

    def __init__(self, height: int) -> None:
        if height < 0:
            raise ConfigurationError(f"height must be >= 0, got {height}")
        self.height = height
        self.size = (1 << (height + 1)) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeSystem(height={self.height})"

    def _children(self, v: int) -> tuple[int, int] | None:
        left = 2 * v + 1
        if left >= self.size:
            return None
        return left, left + 1

    def _find(self, v: int, alive: frozenset[int]) -> frozenset[int] | None:
        kids = self._children(v)
        if kids is None:
            return frozenset([v]) if v in alive else None
        left, right = kids
        if v in alive:
            for child in (left, right):
                sub = self._find(child, alive)
                if sub is not None:
                    return frozenset([v]) | sub
        ql = self._find(left, alive)
        if ql is None:
            return None
        qr = self._find(right, alive)
        if qr is None:
            return None
        return ql | qr

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        return self._find(0, self._check_positions(alive))

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        return self.find_write_quorum(alive)

    def is_write_quorum(self, subset) -> bool:
        # A subset contains a quorum iff treating it as the alive set lets
        # the recursive construction succeed (the recursion explores every
        # structural alternative).
        return self._find(0, self._check_positions(subset)) is not None

    def is_read_quorum(self, subset) -> bool:
        return self.is_write_quorum(subset)

    def _availability(self, p: np.ndarray, height: int) -> np.ndarray:
        if height == 0:
            return p
        sub = self._availability(p, height - 1)
        alive_path = 1.0 - (1.0 - sub) ** 2  # v alive: quorum in >= 1 child
        bypass = sub**2  # v failed: quorums in both children
        return p * alive_path + (1.0 - p) * bypass

    def write_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return self._availability(p, self.height)

    def read_availability(self, p) -> np.ndarray:
        return self.write_availability(p)
