"""Abstract quorum-system interface.

A quorum system over N logical positions ``0..N-1`` defines which node
subsets are valid read and write quorums. The safety requirements are the
paper's equations (2) and (3):

    RQ  ∩ WQ  != {}     (every read sees at least one latest-version node)
    WQ1 ∩ WQ2 != {}     (successive writes chain through a common node)

Concrete systems implement two predicates over *alive* node sets plus
closed-form availability; everything else (sampling quorums, verifying the
intersection properties, Monte-Carlo estimation) is generic.

Positions are *logical*: protocol engines map them onto physical node ids
(e.g. position 0 of a trapezoid is the data node N_i).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CountPredicate", "QuorumSystem", "verify_intersection"]


@dataclass(frozen=True)
class CountPredicate:
    """A quorum predicate expressed over disjoint-group alive *counts*.

    Positions are partitioned into groups of ``sizes[g]`` nodes; the
    predicate holds iff group g musters at least ``thresholds[g]`` alive
    members in **every** group (``mode="all"``, write-style) or in **some**
    group (``mode="any"``, read-check-style). Systems whose quorums depend
    on membership only through these counts (trapezoid levels, majority,
    ROWA, unit-weight voting) expose one via
    :meth:`QuorumSystem.as_level_thresholds`, which lets
    :mod:`repro.analysis.occupancy` evaluate exact availability over the
    joint count distribution — ``prod(s_g + 1)`` table cells instead of
    ``2^size`` subset enumerations.
    """

    sizes: tuple[int, ...]
    thresholds: tuple[int, ...]
    mode: str  # "all" | "any"

    def __post_init__(self) -> None:
        sizes = tuple(int(s) for s in self.sizes)
        thresholds = tuple(int(t) for t in self.thresholds)
        if not sizes:
            raise ConfigurationError("CountPredicate needs at least one group")
        if any(s < 1 for s in sizes):
            raise ConfigurationError(f"group sizes must be >= 1, got {sizes}")
        if len(thresholds) != len(sizes):
            raise ConfigurationError(
                f"need one threshold per group: {len(sizes)} groups, "
                f"{len(thresholds)} thresholds"
            )
        if self.mode not in ("all", "any"):
            raise ConfigurationError(
                f"mode must be 'all' or 'any', got {self.mode!r}"
            )
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "thresholds", thresholds)

    @property
    def total(self) -> int:
        """Number of positions covered by the groups."""
        return sum(self.sizes)

    def evaluate(self, counts) -> bool:
        """Reference semantics over per-group alive counts."""
        counts = tuple(int(c) for c in counts)
        if len(counts) != len(self.sizes):
            raise ConfigurationError(
                f"need {len(self.sizes)} per-group counts, got {len(counts)}"
            )
        hits = (c >= t for c, t in zip(counts, self.thresholds))
        return all(hits) if self.mode == "all" else any(hits)


class QuorumSystem(ABC):
    """Base class for quorum systems over positions ``0..size-1``."""

    #: number of logical positions
    size: int

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #

    @abstractmethod
    def is_write_quorum(self, subset: frozenset[int] | set[int]) -> bool:
        """True iff ``subset`` contains a complete write quorum."""

    @abstractmethod
    def is_read_quorum(self, subset: frozenset[int] | set[int]) -> bool:
        """True iff ``subset`` contains a complete read quorum."""

    def as_level_thresholds(self, kind: str) -> CountPredicate | None:
        """Count-structured form of the ``kind`` ("read"/"write") predicate.

        Returns a :class:`CountPredicate` equivalent to the corresponding
        ``is_*_quorum`` predicate when the system's quorums depend only on
        per-group alive counts, or None when membership matters (grid,
        tree), in which case exact analysis falls back to subset
        enumeration. The groups must partition positions ``0..size-1`` in
        order: group g covers the next ``sizes[g]`` positions.
        """
        if kind not in ("read", "write"):
            raise ConfigurationError(
                f"kind must be 'read' or 'write', got {kind!r}"
            )
        return None

    # ------------------------------------------------------------------ #
    # quorum construction
    # ------------------------------------------------------------------ #

    @abstractmethod
    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        """A minimal write quorum within ``alive``, or None if impossible."""

    @abstractmethod
    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        """A minimal read quorum within ``alive``, or None if impossible."""

    # ------------------------------------------------------------------ #
    # availability
    # ------------------------------------------------------------------ #

    def write_availability(self, p) -> np.ndarray:
        """P(a write quorum exists) for i.i.d. node availability p.

        Default implementation: exact enumeration over all 2^size alive
        subsets. Subclasses override with closed forms where available.
        """
        return self._enumerate_availability(p, self.is_write_quorum)

    def read_availability(self, p) -> np.ndarray:
        """P(a read quorum exists) for i.i.d. node availability p."""
        return self._enumerate_availability(p, self.is_read_quorum)

    def _enumerate_availability(self, p, predicate) -> np.ndarray:
        if self.size > 22:
            raise ConfigurationError(
                f"exact enumeration over {self.size} nodes is infeasible; "
                "override with a closed form or use Monte Carlo"
            )
        p = np.asarray(p, dtype=np.float64)
        total = np.zeros_like(p)
        positions = list(range(self.size))
        for mask in range(1 << self.size):
            alive = frozenset(i for i in positions if mask >> i & 1)
            if predicate(alive):
                na = len(alive)
                total = total + p**na * (1 - p) ** (self.size - na)
        return total

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _check_positions(self, subset) -> frozenset[int]:
        s = frozenset(int(i) for i in subset)
        for i in s:
            if not 0 <= i < self.size:
                raise ConfigurationError(
                    f"position {i} out of range [0, {self.size})"
                )
        return s


def verify_intersection(
    system: QuorumSystem,
    *,
    max_enumeration: int = 4096,
    samples: int = 400,
    rng: np.random.Generator | None = None,
) -> bool:
    """Verify eqs. (2)-(3): RQ ∩ WQ != {} and WQ1 ∩ WQ2 != {}.

    Enumerates all *minimal* quorums reachable via ``find_*_quorum`` over
    alive-subsets when 2^size <= ``max_enumeration``; otherwise samples
    random alive-subsets. Returns False on the first violation.
    """
    rng = rng or np.random.default_rng(0)
    n = system.size

    def alive_sets():
        if (1 << n) <= max_enumeration:
            for mask in range(1 << n):
                yield {i for i in range(n) if mask >> i & 1}
        else:
            for _ in range(samples):
                keep = rng.random(n) < rng.random()
                yield {i for i in range(n) if keep[i]}

    write_quorums = []
    read_quorums = []
    for alive in alive_sets():
        wq = system.find_write_quorum(set(alive))
        if wq is not None:
            if not system.is_write_quorum(wq):
                return False
            if not wq <= alive:
                return False
            write_quorums.append(wq)
        rq = system.find_read_quorum(set(alive))
        if rq is not None:
            if not system.is_read_quorum(rq):
                return False
            if not rq <= alive:
                return False
            read_quorums.append(rq)

    # Deduplicate to keep the cross product tractable.
    write_quorums = list(set(write_quorums))[:200]
    read_quorums = list(set(read_quorums))[:200]
    for w1, w2 in combinations(write_quorums, 2):
        if not w1 & w2:
            return False
    for w in write_quorums:
        for r in read_quorums:
            if not r & w:
                return False
    return True
