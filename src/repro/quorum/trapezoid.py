"""Trapezoid quorum geometry (the paper's section III-B.2).

Nodes are arranged on a logical trapezoid of h+1 levels; level l holds

    s_l = a*l + b          (a >= 0, b >= 1, 0 <= l <= h)

positions. A write quorum takes w_l nodes in *every* level, with the
mandatory absolute majority ``w_0 = floor(b/2) + 1`` at level 0, which is
what guarantees WQ1 ∩ WQ2 != {} (paper's proof in III-B.3). A read
(version-check) quorum takes ``r_l = s_l - w_l + 1`` nodes in *some* level;
``r_l + w_l > s_l`` forces RQ ∩ WQ != {} within that level.

Positions are logical indices ``0..total-1`` assigned level by level; the
protocol engines place the data node N_i at position 0 (level 0) and spread
the parity nodes over the remaining positions, following the paper's
Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import CountPredicate, QuorumSystem

__all__ = [
    "TrapezoidShape",
    "TrapezoidQuorum",
    "TrapezoidSystem",
    "shapes_for_nbnode",
    "default_shape_for_nbnode",
]


@dataclass(frozen=True)
class TrapezoidShape:
    """The (a, b, h) geometry: level l has ``a*l + b`` positions."""

    a: int
    b: int
    h: int

    def __post_init__(self) -> None:
        if self.a < 0:
            raise ConfigurationError(f"a must be >= 0, got {self.a}")
        if self.b < 1:
            raise ConfigurationError(f"b must be >= 1, got {self.b}")
        if self.h < 0:
            raise ConfigurationError(f"h must be >= 0, got {self.h}")

    @property
    def levels(self) -> range:
        """Iterable of level indices 0..h."""
        return range(self.h + 1)

    def level_size(self, level: int) -> int:
        """s_l = a*l + b."""
        if not 0 <= level <= self.h:
            raise ConfigurationError(f"level must be in [0, {self.h}], got {level}")
        return self.a * level + self.b

    @cached_property
    def level_sizes(self) -> tuple[int, ...]:
        """(s_0, ..., s_h)."""
        return tuple(self.a * l + self.b for l in self.levels)

    @cached_property
    def _offsets(self) -> tuple[int, ...]:
        """Cumulative level offsets: level l spans [_offsets[l], _offsets[l+1]).

        Precomputed once per shape so :meth:`level_of` and
        :meth:`positions` are O(1) lookups instead of per-call re-sums —
        both sit on the hot paths of ``TrapezoidSystem._level_counts``
        and the Monte-Carlo membership matrix.
        """
        acc = [0]
        for size in self.level_sizes:
            acc.append(acc[-1] + size)
        return tuple(acc)

    @cached_property
    def _position_levels(self) -> np.ndarray:
        """(total_nodes,) array mapping logical position -> level (read-only)."""
        table = np.repeat(np.arange(self.h + 1, dtype=np.int64), self.level_sizes)
        table.setflags(write=False)
        return table

    @cached_property
    def total_nodes(self) -> int:
        """Nbnode = sum_l s_l (paper's eq. 4)."""
        return self._offsets[-1]

    def level_of(self, position: int) -> int:
        """Level containing logical position ``position`` (O(1))."""
        if not 0 <= position < self.total_nodes:
            raise ConfigurationError(
                f"position must be in [0, {self.total_nodes}), got {position}"
            )
        return int(self._position_levels[position])

    def positions(self, level: int) -> range:
        """Logical positions belonging to ``level`` (contiguous, O(1))."""
        self.level_size(level)  # bounds check
        return range(self._offsets[level], self._offsets[level + 1])

    def ascii_art(self) -> str:
        """Text rendering of the trapezoid (used by the Fig. 1 bench)."""
        width = self.level_size(self.h)
        lines = []
        for l in self.levels:
            marks = " ".join(f"{pos:3d}" for pos in self.positions(l))
            lines.append(f"l={l} s_l={self.level_size(l):2d} |" + marks.center(4 * width))
        return "\n".join(lines)


def shapes_for_nbnode(
    nbnode: int, *, max_h: int | None = None
) -> list[TrapezoidShape]:
    """All (a, b, h) triples whose trapezoid holds exactly ``nbnode`` nodes.

    Solves ``(h+1)*b + a*h*(h+1)/2 = nbnode`` over a >= 0, b >= 1, h >= 0.
    Degenerate single-level shapes (h = 0, where ``a`` is meaningless and
    normalized to 0) are included — they reduce the protocol to a majority
    vote on b nodes.
    """
    if nbnode < 1:
        raise ConfigurationError(f"nbnode must be >= 1, got {nbnode}")
    if max_h is None:
        max_h = nbnode
    shapes = []
    for h in range(0, max_h + 1):
        if h == 0:
            shapes.append(TrapezoidShape(0, nbnode, 0))
            continue
        tri = h * (h + 1) // 2
        for b in range(1, nbnode // (h + 1) + 1):
            rem = nbnode - (h + 1) * b
            if rem < 0:
                break
            if rem % tri == 0:
                shapes.append(TrapezoidShape(rem // tri, b, h))
    return shapes


def default_shape_for_nbnode(nbnode: int) -> TrapezoidShape:
    """A canonical shape for a node budget: prefers the paper's style.

    Preference order: growing trapezoids (a > 0) with the most levels but
    level-0 of at least 3 nodes; falls back to the flat single-level shape.
    The paper's running example Nbnode = 15 resolves to (a=2, b=3, h=2) —
    exactly Figure 1.
    """
    shapes = shapes_for_nbnode(nbnode)
    candidates = [s for s in shapes if s.a > 0 and s.b >= 3]
    if candidates:
        # Most levels first; among those, narrowest level 0 (cheap quorums).
        candidates.sort(key=lambda s: (-s.h, s.b, s.a))
        return candidates[0]
    return TrapezoidShape(0, nbnode, 0)


@dataclass(frozen=True)
class TrapezoidQuorum:
    """A trapezoid shape plus its write-quorum vector (w_0, ..., w_h).

    ``w_0`` is forced to ``floor(b/2) + 1`` (the paper's safety condition);
    upper levels accept any ``1 <= w_l <= s_l``.
    """

    shape: TrapezoidShape
    w: tuple[int, ...]

    def __post_init__(self) -> None:
        shape = self.shape
        w = tuple(int(x) for x in self.w)
        if len(w) != shape.h + 1:
            raise ConfigurationError(
                f"w must have h+1 = {shape.h + 1} entries, got {len(w)}"
            )
        mandatory = shape.b // 2 + 1
        if w[0] != mandatory:
            raise ConfigurationError(
                f"w_0 must be floor(b/2)+1 = {mandatory}, got {w[0]}"
            )
        for l in range(1, shape.h + 1):
            if not 1 <= w[l] <= shape.level_size(l):
                raise ConfigurationError(
                    f"need 1 <= w_{l} <= s_{l} = {shape.level_size(l)}, got {w[l]}"
                )
        object.__setattr__(self, "w", w)

    @classmethod
    def uniform(cls, shape: TrapezoidShape, w: int | None = None) -> "TrapezoidQuorum":
        """The paper's eq. (16) parameterization: w_0 mandatory, w_l = w for
        l >= 1. Defaults w to the per-level majority-ish midpoint s_1 // 2 + 1
        when omitted."""
        w0 = shape.b // 2 + 1
        if shape.h == 0:
            return cls(shape, (w0,))
        if w is None:
            w = shape.level_size(1) // 2 + 1
        return cls(shape, (w0,) + (int(w),) * shape.h)

    # -- derived quantities -------------------------------------------- #

    def r(self, level: int) -> int:
        """Read (version-check) threshold r_l = s_l - w_l + 1."""
        return self.shape.level_size(level) - self.w[level] + 1

    @property
    def read_thresholds(self) -> tuple[int, ...]:
        return tuple(self.r(l) for l in self.shape.levels)

    @cached_property
    def w_array(self) -> np.ndarray:
        """(h+1,) read-only int64 view of ``w``.

        Built once per quorum so the Monte-Carlo estimators and the
        occupancy engine compare against a shared array instead of
        re-running ``np.asarray`` on every call.
        """
        arr = np.asarray(self.w, dtype=np.int64)
        arr.setflags(write=False)
        return arr

    @cached_property
    def read_thresholds_array(self) -> np.ndarray:
        """(h+1,) read-only int64 view of ``read_thresholds``."""
        arr = np.asarray(self.read_thresholds, dtype=np.int64)
        arr.setflags(write=False)
        return arr

    @property
    def min_write_size(self) -> int:
        """|WQ| = sum_l w_l (paper's eq. 6)."""
        return sum(self.w)

    @property
    def min_read_size(self) -> int:
        """Size of the cheapest version-check quorum: min_l r_l."""
        return min(self.read_thresholds)

    # -- alive-count predicates (shared by analysis, MC and protocol) --- #

    def write_predicate(self, alive_per_level) -> bool:
        """Write succeeds iff every level has >= w_l alive nodes."""
        counts = list(alive_per_level)
        if len(counts) != self.shape.h + 1:
            raise ConfigurationError("alive_per_level must have h+1 entries")
        return all(c >= wl for c, wl in zip(counts, self.w))

    def read_check_predicate(self, alive_per_level) -> bool:
        """Version check succeeds iff some level has >= r_l alive nodes."""
        counts = list(alive_per_level)
        if len(counts) != self.shape.h + 1:
            raise ConfigurationError("alive_per_level must have h+1 entries")
        return any(c >= self.r(l) for l, c in enumerate(counts))


class TrapezoidSystem(QuorumSystem):
    """QuorumSystem facade over a :class:`TrapezoidQuorum`.

    Models the *full-replication* reading of the trapezoid protocol
    (TRAP-FR): a read quorum is a version-check quorum (any level with r_l
    nodes), a write quorum takes w_l nodes per level.
    """

    def __init__(self, quorum: TrapezoidQuorum) -> None:
        self.quorum = quorum
        self.shape = quorum.shape
        self.size = self.shape.total_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.shape
        return (
            f"TrapezoidSystem(a={s.a}, b={s.b}, h={s.h}, w={self.quorum.w})"
        )

    def _level_counts(self, subset: frozenset[int]) -> list[int]:
        if not subset:
            return [0] * (self.shape.h + 1)
        levels = self.shape._position_levels[list(subset)]
        return np.bincount(levels, minlength=self.shape.h + 1).tolist()

    def is_write_quorum(self, subset) -> bool:
        subset = self._check_positions(subset)
        return self.quorum.write_predicate(self._level_counts(subset))

    def is_read_quorum(self, subset) -> bool:
        subset = self._check_positions(subset)
        return self.quorum.read_check_predicate(self._level_counts(subset))

    def as_level_thresholds(self, kind: str) -> CountPredicate:
        """The trapezoid predicates are count-structured by construction:
        writes need w_l alive on *every* level, version checks need r_l
        alive on *some* level. Levels are contiguous position ranges, so
        they are the occupancy groups directly."""
        super().as_level_thresholds(kind)  # validates kind
        if kind == "write":
            return CountPredicate(self.shape.level_sizes, self.quorum.w, "all")
        return CountPredicate(
            self.shape.level_sizes, self.quorum.read_thresholds, "any"
        )

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        chosen: list[int] = []
        for l in self.shape.levels:
            members = [p for p in self.shape.positions(l) if p in alive]
            if len(members) < self.quorum.w[l]:
                return None
            chosen.extend(members[: self.quorum.w[l]])
        return frozenset(chosen)

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        # Scan levels 0..h in order, like Algorithm 2.
        alive = self._check_positions(alive)
        for l in self.shape.levels:
            members = [p for p in self.shape.positions(l) if p in alive]
            need = self.quorum.r(l)
            if len(members) >= need:
                return frozenset(members[:need])
        return None

    # Closed forms live in repro.analysis; delegate lazily to avoid a
    # package-level import cycle.
    def write_availability(self, p) -> np.ndarray:
        from repro.analysis.availability import write_availability

        return write_availability(self.quorum, p)

    def read_availability(self, p) -> np.ndarray:
        from repro.analysis.availability import read_availability_fr

        return read_availability_fr(self.quorum, p)
