"""Quorum-system geometry (DESIGN.md S3).

The trapezoid layout of the paper plus the classical baselines its related
work cites: ROWA, Majority [13], Grid [4], and Tree [1] quorums. All share
the :class:`~repro.quorum.base.QuorumSystem` interface, so the analysis and
simulation layers treat them uniformly.
"""

from repro.quorum.base import CountPredicate, QuorumSystem, verify_intersection
from repro.quorum.grid import GridSystem
from repro.quorum.majority import MajoritySystem
from repro.quorum.rowa import RowaSystem
from repro.quorum.trapezoid import (
    TrapezoidQuorum,
    TrapezoidShape,
    TrapezoidSystem,
    default_shape_for_nbnode,
    shapes_for_nbnode,
)
from repro.quorum.tree import TreeSystem
from repro.quorum.voting import WeightedVotingSystem

__all__ = [
    "WeightedVotingSystem",
    "CountPredicate",
    "QuorumSystem",
    "verify_intersection",
    "TrapezoidShape",
    "TrapezoidQuorum",
    "TrapezoidSystem",
    "shapes_for_nbnode",
    "default_shape_for_nbnode",
    "MajoritySystem",
    "RowaSystem",
    "GridSystem",
    "TreeSystem",
]
