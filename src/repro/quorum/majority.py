"""Majority quorum system (Thomas 1979, the paper's ref. [13]).

Both read and write quorums are any strict majority of the n nodes; two
majorities always intersect, which yields both safety conditions at the
price of requiring ceil((n+1)/2) nodes for every operation.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.quorum.base import CountPredicate, QuorumSystem

__all__ = ["MajoritySystem"]


class MajoritySystem(QuorumSystem):
    """Read = write = any ``floor(n/2) + 1`` of the n nodes."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self.size = size
        self.threshold = size // 2 + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MajoritySystem(size={self.size})"

    def is_write_quorum(self, subset) -> bool:
        return len(self._check_positions(subset)) >= self.threshold

    def is_read_quorum(self, subset) -> bool:
        return self.is_write_quorum(subset)

    def as_level_thresholds(self, kind: str) -> CountPredicate:
        """Both quorums are pure cardinality thresholds: one group."""
        super().as_level_thresholds(kind)  # validates kind
        return CountPredicate((self.size,), (self.threshold,), "all")

    def find_write_quorum(self, alive: set[int]) -> frozenset[int] | None:
        alive = self._check_positions(alive)
        if len(alive) < self.threshold:
            return None
        return frozenset(sorted(alive)[: self.threshold])

    def find_read_quorum(self, alive: set[int]) -> frozenset[int] | None:
        return self.find_write_quorum(alive)

    def write_availability(self, p) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        # P(Binomial(n, p) >= threshold)
        return stats.binom.sf(self.threshold - 1, self.size, p)

    def read_availability(self, p) -> np.ndarray:
        return self.write_availability(p)
