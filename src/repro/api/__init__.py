"""Unified facade (DESIGN.md S9): declarative specs, registries, runner.

The canonical way to construct and run everything in the repo:

* :mod:`repro.api.spec` — the frozen, JSON-round-trippable
  :class:`SystemSpec` configuration tree (code, quorum, cluster, placement,
  workload, scenario, one top-level ``seed``);
* :mod:`repro.api.registry` — name registries for quorum systems
  (``trapezoid``/``rowa``/``majority``/``grid``/``tree``/``voting``) and
  protocol engines (``trap-erc``/``trap-fr``/``rowa``/``majority``);
* :mod:`repro.api.build` — :func:`build_system`, composing the existing
  constructors behind one factory, and the minimal
  :class:`ProtocolEngine` protocol every engine satisfies;
* :mod:`repro.api.runner` — :class:`ScenarioRunner`, executing MC
  availability, protocol Monte-Carlo, trace simulations, comparisons,
  sweeps and event-driven latency/faultload runs from a spec into tidy
  JSON-dumpable results.

Ten-line quickstart::

    import numpy as np
    from repro.api import SystemSpec, build_system

    spec = SystemSpec.trapezoid(n=9, k=6, a=2, b=1, h=1, w=2, seed=7)
    system = build_system(spec)
    system.initialize()
    value = np.full(32, 42, dtype=np.uint8)
    print(system.engine.write_block(0, value).success)
    print(system.engine.read_block(0).value[:4])

See ``docs/API.md`` for the full spec schema and registry catalogue.
"""

from repro.api.build import (
    BuiltSystem,
    ProtocolEngine,
    ShardedSystem,
    build_sharded_system,
    build_system,
)
from repro.api.registry import (
    ProtocolEntry,
    QuorumEntry,
    build_latency_model,
    build_quorum_system,
    build_service_model,
    build_trapezoid_quorum,
    protocol_entry,
    protocol_names,
    quorum_entry,
    quorum_names,
    register_protocol,
    register_quorum,
)
from repro.api.runner import (
    ScenarioResult,
    ScenarioRunner,
    run_spec,
)
from repro.api.spec import (
    ClusterSpec,
    CodeSpec,
    FaultloadSpec,
    LatencySpec,
    MetadataSpec,
    PlacementSpec,
    QuorumSpec,
    ScenarioSpec,
    ServiceTimeSpec,
    ShardingSpec,
    SystemSpec,
    TransportSpec,
    WorkloadSpec,
    execution_options,
)

__all__ = [
    "CodeSpec",
    "QuorumSpec",
    "ClusterSpec",
    "PlacementSpec",
    "WorkloadSpec",
    "LatencySpec",
    "ServiceTimeSpec",
    "ShardingSpec",
    "FaultloadSpec",
    "MetadataSpec",
    "ScenarioSpec",
    "TransportSpec",
    "SystemSpec",
    "QuorumEntry",
    "ProtocolEntry",
    "register_quorum",
    "register_protocol",
    "quorum_names",
    "protocol_names",
    "quorum_entry",
    "protocol_entry",
    "build_quorum_system",
    "build_trapezoid_quorum",
    "ProtocolEngine",
    "BuiltSystem",
    "build_system",
    "ShardedSystem",
    "build_sharded_system",
    "ScenarioRunner",
    "ScenarioResult",
    "run_spec",
    "execution_options",
    "build_latency_model",
    "build_service_model",
]
