"""Spec-driven scenario execution with tidy, JSON-dumpable results.

:class:`ScenarioRunner` is the facade's execution engine: it takes one
:class:`~repro.api.spec.SystemSpec`, dispatches on ``spec.scenario.kind``
(smoke / availability / protocol_mc / trace / comparison / sweep /
optimize / latency) and
returns a :class:`ScenarioResult` whose ``to_json()`` output embeds the
originating spec — a results file is therefore a reproducible artifact:
``SystemSpec.from_dict(result["spec"])`` re-runs the exact experiment.

Determinism: all randomness is derived from ``spec.seed`` through
:func:`repro.cluster.rng.spawn_rngs` child streams. Stream 0 is reserved
for :func:`~repro.api.build.build_system` (engine/initialization data);
the runner consumes streams 1+ for workloads, schedules, traces and
Monte-Carlo sampling, so the individual sub-experiments stay independent
and an identical spec reproduces identical numbers end to end.

Parallelism: ``ScenarioRunner(spec, jobs=N)`` fans the independent units
of the saturation / sweep / availability / protocol_mc / comparison /
optimize kinds across a :class:`~repro.parallel.ParallelExecutor`
process pool. ``jobs`` is an *execution* option, never part of the spec:
every unit re-derives its child streams positionally from ``spec.seed``
(tasks cross the process boundary as spec JSON plus a task index), so
the same spec + seed produces byte-identical results at any parallelism.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.analysis.optimizer import ConfigPoint, optimize_config_sweep
from repro.api.build import BuiltSystem, build_sharded_system, build_system
from repro.api.registry import (
    build_latency_model,
    build_trapezoid_quorum,
    protocol_entry,
    protocol_names,
)
from repro.api.spec import (
    FaultloadSpec,
    LatencySpec,
    ServiceTimeSpec,
    SystemSpec,
)
from repro.cluster.events import Simulator
from repro.cluster.failures import exponential_trace
from repro.cluster.node import ByzantineBehavior, MetadataByzantineBehavior
from repro.cluster.rng import make_rng, spawn_rngs
from repro.errors import ConfigurationError
from repro.parallel import ParallelExecutor
from repro.parallel.tasks import (
    comparison_protocol_task,
    protocol_mc_chunk_task,
    saturation_point_task,
)
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.event import EventCoordinator
from repro.runtime.rounds import RetryPolicy
from repro.sim.comparative import make_schedule, run_comparison
from repro.sim.metrics import MCEstimate
from repro.sim.protocol_mc import ProtocolMonteCarlo
from repro.sim.saturation import (
    SaturationPoint,
    knee_clients,
    queue_summary,
    run_saturation_point,
)
from repro.sim.sweep import availability_sweep
from repro.sim.trace_sim import (
    ClosedLoopConfig,
    ClosedLoopSimulation,
    PartitionWindow,
    ShardedClosedLoopSimulation,
    TraceSimConfig,
    TraceSimulation,
)
from repro.sim.workloads import (
    OpKind,
    sequential_workload,
    uniform_workload,
    vm_disk_workload,
    write_payload,
    zipf_workload,
)

__all__ = ["ScenarioResult", "ScenarioRunner", "run_spec"]

#: number of deterministic child streams carved out of ``spec.seed``.
#: SeedSequence.spawn keys by child index, so growing this list appends
#: new independent streams without perturbing streams 0..9 (existing
#: scenario kinds keep reproducing their exact historical results).
#: Stream 10 feeds the per-node service queues, stream 11 the per-point
#: streams of the saturation sweep, stream 12 the Byzantine faultload
#: (node choice + per-node corruption coins — untouched for every other
#: faultload kind, so rate-0 / kind-"none" runs stay bit-identical).
#: Stream 13 arms the *metadata* liars (``metadata_liars`` > 0) — again
#: appended, and consumed only when that field is set, so every older
#: spec replays its exact historical results.
_NUM_STREAMS = 14

#: protocol_mc trial chunks per operation: the fan-out grain of the
#: protocol-MC scenario. Fixed (not derived from ``jobs``) so the
#: stream layout — child c of stream 3 feeds chunk c — and therefore
#: the sampled numbers are independent of the worker count.
_PROTOCOL_MC_CHUNKS = 8


@dataclass
class ScenarioResult:
    """Tidy scenario output: the spec that produced it plus the data."""

    kind: str
    protocol: str
    spec: dict
    data: dict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "protocol": self.protocol,
            "spec": self.spec,
            "data": self.data,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        payload = json.loads(text)
        return cls(
            kind=payload["kind"],
            protocol=payload["protocol"],
            spec=payload["spec"],
            data=payload["data"],
        )

    def replay_spec(self) -> SystemSpec:
        """The embedded spec as a live object (for exact re-runs)."""
        return SystemSpec.from_dict(self.spec)


def _estimate_dict(est: MCEstimate) -> dict:
    lo, hi = est.ci95()
    return {
        "mean": est.mean,
        "successes": est.successes,
        "trials": est.trials,
        "ci95": [lo, hi],
    }


def _make_workload(spec: SystemSpec, num_blocks: int, rng) -> list:
    wl = spec.workload
    generators = {
        "uniform": lambda: uniform_workload(
            wl.num_ops, num_blocks, wl.read_fraction, rng=rng
        ),
        "sequential": lambda: sequential_workload(
            wl.num_ops, num_blocks, wl.read_fraction, rng=rng
        ),
        "zipf": lambda: zipf_workload(
            wl.num_ops, num_blocks, wl.read_fraction, alpha=wl.alpha, rng=rng
        ),
        "vm_disk": lambda: vm_disk_workload(
            wl.num_ops,
            num_blocks,
            wl.read_fraction,
            burst_length=wl.burst_length,
            hot_fraction=wl.hot_fraction,
            rng=rng,
        ),
    }
    return generators[wl.kind]()


class ScenarioRunner:
    """Execute the scenario one spec describes.

    ``transports`` only matters to the ``wallclock`` kind: a
    ``{node_id: transport}`` map pointing at an already-running service
    fleet (e.g. ``repro serve``); the measured half then drives that
    fleet — mirroring the initialized state over the wire first —
    instead of spawning services in-process.

    ``jobs`` fans the independent units of the parallelizable kinds
    (saturation points, sweep/availability MC columns, protocol_mc trial
    chunks, optimizer shape families, comparison sub-runs) across a
    process pool; ``jobs <= 1`` runs the same task functions inline.
    ``jobs`` is an execution option: it never enters the spec, the
    result data, or any hash, and every worker count produces the byte
    stream ``jobs=0`` produces.

    ``executor`` lends the runner an already-open
    :class:`~repro.parallel.ParallelExecutor` instead of ``jobs``: the
    caller keeps ownership (``run()`` will not close it), and repeated
    runs reuse the warm worker pool instead of paying spawn + import
    per run.
    """

    def __init__(
        self,
        spec: SystemSpec,
        *,
        transports=None,
        jobs: int = 0,
        executor: ParallelExecutor | None = None,
    ) -> None:
        self.spec = spec
        self.transports = transports
        self.jobs = jobs
        self._streams: list = []
        self._executor: ParallelExecutor | None = None
        self._shared_executor = executor

    # ------------------------------------------------------------------ #

    def run(self) -> ScenarioResult:
        """Dispatch on ``spec.scenario.kind`` and return tidy results.

        Idempotent: the seed-derived child streams are respawned on every
        call, so ``run()`` twice on one runner returns identical results.
        Stream 0 belongs to build_system; see the module docstring.
        """
        self._streams = spawn_rngs(make_rng(self.spec.seed), _NUM_STREAMS)
        runners = {
            "smoke": self._run_smoke,
            "availability": self._run_availability,
            "protocol_mc": self._run_protocol_mc,
            "trace": self._run_trace,
            "comparison": self._run_comparison,
            "sweep": self._run_sweep,
            "optimize": self._run_optimize,
            "latency": self._run_latency,
            "saturation": self._run_saturation,
            "wallclock": self._run_wallclock,
        }
        shared = self._shared_executor is not None
        self._executor = (
            self._shared_executor if shared else ParallelExecutor(self.jobs)
        )
        try:
            data = runners[self.spec.scenario.kind]()
        finally:
            if not shared:
                self._executor.close()
            self._executor = None
        return ScenarioResult(
            kind=self.spec.scenario.kind,
            protocol=self.spec.protocol,
            spec=self.spec.to_dict(),
            data=data,
        )

    def _map(self, fn, payloads: list) -> list:
        """Run the scenario's fan-out units through the active executor.

        Falls back to a plain inline loop when called outside
        :meth:`run` (no executor open) — the same code path
        ``jobs=0`` takes, so results never depend on how we got here.
        """
        if self._executor is None:
            return [fn(payload) for payload in payloads]
        return self._executor.map(fn, payloads)

    # ------------------------------------------------------------------ #
    # scenario kinds
    # ------------------------------------------------------------------ #

    def _require_trapezoid(self) -> TrapezoidQuorum:
        quorum = build_trapezoid_quorum(self.spec.quorum)
        expected = self.spec.code.group_size
        if quorum.shape.total_nodes != expected:
            raise ConfigurationError(
                f"trapezoid holds {quorum.shape.total_nodes} nodes but "
                f"(n={self.spec.code.n}, k={self.spec.code.k}) requires "
                f"Nbnode = n - k + 1 = {expected}"
            )
        return quorum

    def _run_smoke(self) -> dict:
        """Run the workload through the engine on a healthy cluster."""
        built = build_system(self.spec)
        built.initialize()
        ops = _make_workload(self.spec, built.num_blocks, self._streams[1])
        reads = writes = reads_ok = writes_ok = 0
        for op in ops:
            if op.kind is OpKind.READ:
                reads += 1
                reads_ok += bool(built.engine.read_block(op.block).success)
            else:
                writes += 1
                value = write_payload(
                    op.payload_seed, self.spec.workload.block_length
                )
                writes_ok += bool(built.engine.write_block(op.block, value).success)
        return {
            "reads": reads,
            "reads_ok": reads_ok,
            "writes": writes,
            "writes_ok": writes_ok,
            "messages": built.cluster.network.stats.messages,
        }

    def _run_availability(self) -> dict:
        """Closed-form / exact / Monte-Carlo sweep over ``scenario.ps``."""
        quorum = self._require_trapezoid()
        records = availability_sweep(
            quorum,
            self.spec.code.n,
            self.spec.code.k,
            self.spec.scenario.ps,
            mc_trials=self.spec.scenario.trials,
            rng=self._streams[2],
            executor=self._executor,
        )
        return {"records": [asdict(r) for r in records]}

    def _run_protocol_mc(self) -> dict:
        """Per-trial execution of the real engine under sampled failures.

        The trial budget splits into :data:`_PROTOCOL_MC_CHUNKS` chunks
        per operation, each sampling on its own child of stream 3 (see
        :meth:`protocol_mc_chunk` for the layout); the chunk is the
        fan-out unit, and because the layout is fixed by the spec alone
        the estimates are identical at any worker count.
        """
        p = self.spec.cluster.p
        trials = self.spec.scenario.trials
        if trials < 1:
            raise ConfigurationError(
                f"protocol_mc needs trials >= 1, got {trials} "
                "(trials = 0 only disables the optional MC column of "
                "availability/sweep scenarios)"
            )
        entry = protocol_entry(self.spec.protocol)
        if entry.needs_trapezoid:
            self._require_trapezoid()  # surface config errors pre-dispatch
        num_chunks = min(trials, _PROTOCOL_MC_CHUNKS)
        base, extra = divmod(trials, num_chunks)
        sizes = [base + (1 if i < extra else 0) for i in range(num_chunks)]
        spec_dict = self.spec.to_dict()
        payloads = [
            {
                "spec": spec_dict,
                "op": op,
                "index": i,
                "num_chunks": num_chunks,
                "chunk_trials": sizes[i],
            }
            for op in ("read", "write")
            for i in range(num_chunks)
        ]
        outs = self._map(protocol_mc_chunk_task, payloads)
        read = MCEstimate(
            sum(o[0] for o in outs[:num_chunks]),
            sum(o[1] for o in outs[:num_chunks]),
        )
        write = MCEstimate(
            sum(o[0] for o in outs[num_chunks:]),
            sum(o[1] for o in outs[num_chunks:]),
        )
        return {
            "p": p,
            "read": _estimate_dict(read),
            "write": _estimate_dict(write),
        }

    def protocol_mc_chunk(
        self, op: str, index: int, num_chunks: int, chunk_trials: int
    ) -> list[int]:
        """One protocol_mc trial chunk: ``[successes, trials]``.

        Stream layout: stream 3 spawns ``1 + 2 * num_chunks`` children —
        child 0 seeds the harness (stripe payload data), children
        ``1 .. num_chunks`` sample the read chunks and the rest the write
        chunks. Child selection depends only on (op, index, num_chunks),
        never on which worker runs the chunk, and the streams are
        respawned from ``spec.seed`` here so inline and worker execution
        see identical state.
        """
        self._streams = spawn_rngs(make_rng(self.spec.seed), _NUM_STREAMS)
        children = spawn_rngs(self._streams[3], 1 + 2 * num_chunks)
        offset = 1 + (num_chunks if op == "write" else 0)
        chunk_rng = children[offset + index]
        p = self.spec.cluster.p
        entry = protocol_entry(self.spec.protocol)
        if entry.needs_trapezoid:
            quorum = self._require_trapezoid()
            mc = ProtocolMonteCarlo(
                self.spec.code.n,
                self.spec.code.k,
                quorum,
                block_length=self.spec.workload.block_length,
                rng=children[0],
                stripes=self.spec.placement.stripes,
            )
            variant = "erc" if self.spec.protocol == "trap-erc" else "fr"
            if op == "read":
                est = mc.read_availability(
                    p, trials=chunk_trials, protocol=variant, rng=chunk_rng
                )
            else:
                est = mc.write_availability(
                    p, trials=chunk_trials, protocol=variant, rng=chunk_rng
                )
        else:
            est = self._generic_protocol_mc_chunk(op, p, chunk_trials, chunk_rng)
        return [est.successes, est.trials]

    def _generic_protocol_mc_chunk(
        self, op: str, p: float, trials: int, rng
    ) -> MCEstimate:
        """Snapshot-model MC chunk for engines ProtocolMonteCarlo skips.

        Same discipline as :class:`ProtocolMonteCarlo`: one vectorized
        alive draw, reads on synced state, full re-initialization after
        every (state-mutating) write trial.
        """
        built = build_system(self.spec)
        data = built.initialize()
        alive = rng.random((trials, len(built.cluster))) < p
        successes = 0
        if op == "read":
            for t in range(trials):
                built.cluster.apply_alive_vector(alive[t])
                successes += bool(built.engine.read_block(0).success)
            built.cluster.recover_all()
        else:
            length = self.spec.workload.block_length
            for t in range(trials):
                built.cluster.apply_alive_vector(alive[t])
                value = rng.integers(0, 256, length, dtype=np.int64).astype(
                    np.uint8
                )
                successes += bool(built.engine.write_block(0, value).success)
                built.cluster.recover_all()
                built.initialize(data)  # reset to synced version-0 replicas
        return MCEstimate(successes, trials)

    def _run_trace(self) -> dict:
        """History-model run over an exponential failure trace."""
        if self.spec.protocol != "trap-erc":
            raise ConfigurationError(
                "trace scenarios run the TRAP-ERC engine; set protocol to "
                f"'trap-erc' (got {self.spec.protocol!r})"
            )
        cluster = self.spec.cluster
        if cluster.failure != "exponential":
            raise ConfigurationError(
                "trace scenarios need cluster.failure = 'exponential' "
                "with mtbf and mttr"
            )
        quorum = self._require_trapezoid()
        scenario = self.spec.scenario
        trace = exponential_trace(
            self.spec.code.n,
            cluster.mtbf,
            cluster.mttr,
            scenario.horizon,
            rng=self._streams[4],
        )
        config = TraceSimConfig(
            horizon=scenario.horizon,
            op_rate=scenario.op_rate,
            read_fraction=self.spec.workload.read_fraction,
            repair_interval=scenario.repair_interval,
            block_length=self.spec.workload.block_length,
            stripes=self.spec.placement.stripes,
        )
        sim = TraceSimulation(
            self.spec.code.n,
            self.spec.code.k,
            quorum,
            trace,
            config=config,
            workload=(
                None
                if self.spec.workload.kind == "uniform"
                else _make_workload(
                    self.spec, config.stripes * self.spec.code.k, self._streams[5]
                )
            ),
            rng=self._streams[6],
        )
        tally = sim.run()
        return {**asdict(tally), "summary": tally.summary()}

    def _run_comparison(self) -> dict:
        """Registry protocols against one shared failure/op schedule.

        Each protocol is an independent sub-run (own cluster and engine
        replaying the same seed-derived schedule), so the comparison
        fans one task per protocol; :meth:`comparison_single` regrows
        the shared data and schedule identically inside each task.
        """
        scenario = self.spec.scenario
        names = scenario.protocols or protocol_names()
        num_blocks = scenario.num_blocks or self.spec.code.k
        if num_blocks > self.spec.code.k:
            raise ConfigurationError(
                f"num_blocks must be <= k = {self.spec.code.k}, got {num_blocks}"
            )
        spec_dict = self.spec.to_dict()
        payloads = [{"spec": spec_dict, "name": name} for name in names]
        outs = self._map(comparison_protocol_task, payloads)
        return dict(zip(names, outs))

    def comparison_single(self, name: str) -> dict:
        """One protocol's comparison sub-run — the comparison fan-out unit.

        The shared payload data (stream 1) and the failure/op schedule
        (stream 2) are regenerated from freshly respawned seed streams,
        so every protocol replays the *same* schedule against its own
        cluster whether it runs inline or on a worker.
        """
        self._streams = spawn_rngs(make_rng(self.spec.seed), _NUM_STREAMS)
        scenario = self.spec.scenario
        num_blocks = scenario.num_blocks or self.spec.code.k
        shared_data = (
            self._streams[1]
            .integers(
                0,
                256,
                size=(self.spec.code.k, self.spec.workload.block_length),
                dtype=np.int64,
            )
            .astype(np.uint8)
        )
        built = build_system(self.spec.replace(protocol=name))
        built.initialize(shared_data)
        repair = built.repair_fn()
        schedule = make_schedule(
            scenario.steps,
            self.spec.cluster.num_nodes,
            num_blocks,
            max_down=scenario.max_down,
            read_fraction=self.spec.workload.read_fraction,
            rng=self._streams[2],
        )
        results = run_comparison(
            {name: (built.cluster, built.engine)},
            schedule,
            self.spec.workload.block_length,
            repair_fns={name: repair} if repair is not None else {},
        )
        res = results[name]
        return {
            **asdict(res),
            "read_availability": res.read_availability,
            "write_availability": res.write_availability,
            "messages_per_read": res.messages_per_read,
            "messages_per_write": res.messages_per_write,
        }

    def _run_sweep(self) -> dict:
        """The availability sweep across trapezoid ``w_values``."""
        base = self._require_trapezoid()
        shape = base.shape
        if shape.h == 0:
            # A single-level trapezoid has no free w (w_0 is mandatory):
            # sweeping w_values over it would fabricate a dependence.
            if self.spec.scenario.w_values is not None:
                raise ConfigurationError(
                    "w_values cannot be swept on an h = 0 trapezoid "
                    "(w_0 = floor(b/2) + 1 is mandatory)"
                )
            w_values = (base.w[0],)
        elif self.spec.scenario.w_values is not None:
            w_values = self.spec.scenario.w_values
        else:
            w_values = tuple(range(1, shape.level_size(1) + 1))
        children = spawn_rngs(self._streams[7], len(w_values))
        records = []
        for w, rng in zip(w_values, children):
            quorum = TrapezoidQuorum.uniform(shape, w if shape.h > 0 else None)
            for rec in availability_sweep(
                quorum,
                self.spec.code.n,
                self.spec.code.k,
                self.spec.scenario.ps,
                mc_trials=self.spec.scenario.trials,
                rng=rng,
                executor=self._executor,
            ):
                records.append({"w": w, **asdict(rec)})
        return {"w_values": list(w_values), "records": records}


    def _run_optimize(self) -> dict:
        """Occupancy-engine (shape, w) search across ``scenario.ps``.

        Deterministic (no randomness consumed): the per-shape occupancy
        tables are built once and every p of the grid folds against them,
        so even wide sweeps stay interactive.
        """
        scenario = self.spec.scenario
        results = optimize_config_sweep(
            self.spec.code.n,
            self.spec.code.k,
            scenario.ps,
            max_h=scenario.max_h,
            executor=self._executor,
        )

        def point(pt: ConfigPoint) -> dict:
            return {
                "shape": {"a": pt.shape.a, "b": pt.shape.b, "h": pt.shape.h},
                "w": list(pt.w),
                "write": pt.write,
                "read": pt.read,
            }

        return {
            "max_h": scenario.max_h,
            "results": [
                {
                    "p": p,
                    "evaluated": res.evaluated,
                    "best_for_writes": point(res.best_for_writes),
                    "best_for_reads": point(res.best_for_reads),
                    "best_balanced": point(res.best_balanced),
                    "pareto": [point(pt) for pt in res.pareto],
                }
                for p, res in zip(scenario.ps, results)
            ],
        }


    def _faultload(self, faultload: FaultloadSpec, horizon: float, rng):
        """Materialize a faultload: (FailureTrace | None, partition windows)."""
        if faultload.kind == "churn":
            trace = exponential_trace(
                self.spec.cluster.num_nodes,
                faultload.mtbf,
                faultload.mttr,
                horizon,
                rng=rng,
            )
            return trace, []
        if faultload.kind == "partition":
            windows = []
            num_nodes = self.spec.cluster.num_nodes
            size = min(faultload.partition_size, num_nodes)
            start = faultload.period
            while start < horizon:
                nodes = tuple(
                    sorted(rng.choice(num_nodes, size=size, replace=False).tolist())
                )
                windows.append(
                    PartitionWindow(start, start + faultload.duration, nodes)
                )
                start += faultload.period
            return None, windows
        # "none" and "byzantine" inject no downtime; Byzantine arming is
        # a separate step (corrupt nodes answer, they don't vanish).
        return None, []

    def _arm_byzantine(self, cluster, faultload: FaultloadSpec, rng) -> list[int]:
        """Flip a seed-chosen fraction of the *data* nodes Byzantine.

        Returns the armed node ids (``[]`` for every other faultload
        kind). Only ids below ``spec.cluster.num_nodes`` are candidates:
        the metadata tier appended after them stays honest, which is the
        trust assumption of the separate-metadata construction. Each
        armed node corrupts with its own child stream of ``rng``, so the
        coin sequence is independent of delivery order elsewhere.
        """
        if faultload.kind != "byzantine":
            return []
        num_nodes = self.spec.cluster.num_nodes
        count = int(round(faultload.byzantine_fraction * num_nodes))
        count = max(0, min(count, num_nodes))
        if count == 0:
            return []
        chosen = sorted(
            int(i) for i in rng.choice(num_nodes, size=count, replace=False)
        )
        streams = spawn_rngs(rng, count)
        for node_id, stream in zip(chosen, streams):
            cluster.node(node_id).set_byzantine(
                ByzantineBehavior(
                    faultload.corruption_mode, faultload.corruption_rate, stream
                )
            )
        return chosen

    def _arm_metadata_byzantine(
        self, cluster, faultload: FaultloadSpec, rng
    ) -> list[int]:
        """Turn ``metadata_liars`` seed-chosen *metadata* nodes Byzantine.

        The complement of :meth:`_arm_byzantine`: candidates are the
        metadata ids appended after ``spec.cluster.num_nodes``. Must run
        *after* the system is initialized — ``stale_record`` mode primes
        each liar with a snapshot of the records it holds at arm time, so
        arming before the version-0 bootstrap would leave nothing to
        roll back to. Returns the armed ids (``[]`` when unused).
        """
        if faultload.kind != "byzantine" or faultload.metadata_liars == 0:
            return []
        meta = self.spec.metadata
        if meta is None:
            raise ConfigurationError(
                "metadata_liars > 0 needs a metadata section in the spec"
            )
        if faultload.metadata_liars > meta.nodes:
            raise ConfigurationError(
                f"metadata_liars = {faultload.metadata_liars} exceeds the "
                f"metadata tier size {meta.nodes}"
            )
        first = self.spec.cluster.num_nodes
        chosen = sorted(
            first + int(i)
            for i in rng.choice(
                meta.nodes, size=faultload.metadata_liars, replace=False
            )
        )
        streams = spawn_rngs(rng, len(chosen))
        for node_id, stream in zip(chosen, streams):
            behavior = MetadataByzantineBehavior(
                faultload.metadata_mode, faultload.metadata_rate, stream
            )
            node = cluster.node(node_id)
            behavior.prime(node)
            node.set_byzantine(behavior)
        return chosen

    def _byzantine_report(
        self,
        faultload: FaultloadSpec,
        cluster,
        armed,
        verifiers,
        meta_armed=(),
        repairs=(),
    ) -> dict | None:
        """The ``byzantine`` result block (None when nothing to report)."""
        if faultload.kind != "byzantine" and not verifiers:
            return None
        detected = {
            "digest_mismatches": 0,
            "version_mismatches": 0,
            "metadata_failures": 0,
            "tag_rejections": 0,
            "record_conflicts": 0,
        }
        for verifier in verifiers:
            for key, value in verifier.counters().items():
                detected[key] += value
        active = faultload.kind == "byzantine"
        report = {
            "nodes": list(armed),
            "fraction": faultload.byzantine_fraction if active else 0.0,
            "mode": faultload.corruption_mode,
            "rate": faultload.corruption_rate if active else 0.0,
            "injected": sum(
                cluster.node(i).stats.corrupted_replies for i in armed
            ),
            "metadata_nodes": list(meta_armed),
            "metadata_mode": faultload.metadata_mode,
            "metadata_injected": sum(
                cluster.node(i).stats.corrupted_replies for i in meta_armed
            ),
            "detected": detected if verifiers else None,
        }
        if repairs:
            repair_totals = {
                "repairs_performed": 0,
                "repairs_blocked": 0,
                "records_rejected": 0,
            }
            for service in repairs:
                for key, value in service.counters().items():
                    repair_totals[key] += value
            report["repair"] = repair_totals
        return report

    def _sharding_requested(self) -> bool:
        """True when the spec opts into the sharded runtime.

        Any ``sharding`` section (even one shard) or a non-zero service
        model routes through the router path; specs without either keep
        the historical unsharded code path untouched. The property tests
        pin a 1-shard / zero-service sharded run bit-identical to it.
        """
        if self.spec.sharding is not None:
            return True
        return self.spec.service is not None and self.spec.service.kind != "none"

    def _run_latency(self) -> dict:
        """Event-driven closed-loop run: latency percentiles under faults.

        The engine runs on an :class:`EventCoordinator`; ``clients``
        closed-loop clients keep operations concurrently in flight while
        the faultload (churn or partitions) interleaves mid-operation.
        Stream 8 drives message-latency sampling, stream 9 the faultload,
        so the same spec + seed reproduces the identical event trace
        (``trace_hash`` digests it). Specs with a ``sharding`` or
        ``service`` section run on the sharded router path instead
        (stream 10 feeds the service queues) and additionally report
        per-shard percentiles and queue summaries.
        """
        scenario = self.spec.scenario
        latency_spec = self.spec.latency or LatencySpec()
        faultload = scenario.faultload or FaultloadSpec()
        if self._sharding_requested():
            return self._run_sharded_latency(scenario, latency_spec, faultload)
        simulator = Simulator()
        policy = RetryPolicy(
            timeout=latency_spec.timeout, retries=latency_spec.retries
        )
        model = build_latency_model(latency_spec)
        coordinator: list[EventCoordinator] = []

        def factory(cluster):
            coordinator.append(
                EventCoordinator(
                    cluster,
                    simulator,
                    latency=model,
                    rng=self._streams[8],
                    policy=policy,
                    record_trace=True,
                )
            )
            return coordinator[0]

        built = build_system(self.spec, coordinator_factory=factory)
        built.initialize()
        armed = self._arm_byzantine(built.cluster, faultload, self._streams[12])
        meta_armed = self._arm_metadata_byzantine(
            built.cluster, faultload, self._streams[13]
        )
        ops = _make_workload(self.spec, built.num_blocks, self._streams[1])
        trace, partitions = self._faultload(
            faultload, scenario.horizon, self._streams[9]
        )
        config = ClosedLoopConfig(
            clients=scenario.clients,
            think_time=scenario.think_time,
            horizon=scenario.horizon,
            block_length=self.spec.workload.block_length,
            repair_interval=scenario.repair_interval,
        )
        sim = ClosedLoopSimulation(
            built.cluster,
            built.engine,
            coordinator[0],
            ops,
            config=config,
            trace=trace,
            partitions=partitions,
            repair=built.repair if scenario.repair_interval is not None else None,
        )
        tally = sim.run()
        data = {
            "clients": scenario.clients,
            "think_time": scenario.think_time,
            "horizon": scenario.horizon,
            "faultload": faultload.to_dict(),
            "latency_model": latency_spec.to_dict(),
            "ops_submitted": tally.reads_attempted + tally.writes_attempted,
            "virtual_duration": simulator.now,
            "summary": tally.summary(),
            "trace_hash": coordinator[0].trace_hash(),
        }
        verifiers = [built.verifier] if built.verifier is not None else []
        report = self._byzantine_report(
            faultload,
            built.cluster,
            armed,
            verifiers,
            meta_armed=meta_armed,
            repairs=[built.repair] if built.repair is not None else (),
        )
        if report is not None:
            data["byzantine"] = report
        return data

    def _run_wallclock(self) -> dict:
        """Predicted vs measured: the simulator and live services, one spec.

        The prediction half is a plain ``latency`` run of the identical
        spec (virtual seconds from the ``latency`` model); the measured
        half drives the same seeded workload tape against real node
        services through :func:`repro.services.wallclock.run_wallclock`
        (wall seconds over the spec's ``transport``). The two columns
        share *shape* — ordering, tail ratios — not units; see
        docs/RUNTIME.md, *Wall-clock backend*.
        """
        # imported here: the services subsystem pulls in asyncio plumbing
        # no simulated scenario needs, and it imports this module back
        from repro.services.wallclock import run_wallclock

        # the measured half drives the single-volume engine, so the
        # prediction drops sharding/service to stay apples-to-apples
        predicted_spec = self.spec.replace(
            scenario=self.spec.scenario.replace(kind="latency"),
            sharding=None,
            service=None,
        )
        predicted = ScenarioRunner(predicted_spec).run()
        measured = run_wallclock(self.spec, transports=self.transports)

        def _percentiles(summary: dict) -> dict:
            return {
                op: {
                    key: summary[f"{op}_latency"][key]
                    for key in ("count", "p50", "p95", "p99")
                }
                for op in ("read", "write")
            }

        return {
            "predicted": {
                "summary": predicted.data["summary"],
                "virtual_duration": predicted.data["virtual_duration"],
                "trace_hash": predicted.data["trace_hash"],
            },
            "measured": measured,
            "comparison": {
                "predicted": _percentiles(predicted.data["summary"]),
                "measured": _percentiles(measured["summary"]),
            },
        }

    def _sharded_closed_loop(
        self,
        clients: int,
        ops,
        trace,
        partitions,
        rng,
        service_rng,
    ):
        """One fresh sharded closed-loop run (own simulator and cluster).

        Returns ``(simulation, system)`` so callers can arm Byzantine
        nodes before running and harvest detection counters after.
        """
        scenario = self.spec.scenario
        system = build_sharded_system(
            self.spec, rng=rng, service_rng=service_rng, record_trace=True
        )
        system.initialize()
        config = ClosedLoopConfig(
            clients=clients,
            think_time=scenario.think_time,
            horizon=scenario.horizon,
            block_length=self.spec.workload.block_length,
            repair_interval=scenario.repair_interval,
        )
        sim = ShardedClosedLoopSimulation(
            system.cluster,
            system.router,
            list(ops),
            config=config,
            trace=trace,
            partitions=partitions,
            repairs=(
                system.repairs if scenario.repair_interval is not None else None
            ),
        )
        return sim, system

    def _run_sharded_latency(self, scenario, latency_spec, faultload) -> dict:
        """The latency scenario on the sharded router path.

        Streams match the unsharded path (8 = coordinator sampling, 9 =
        faultload, 1 = workload) plus stream 10 for the service queues,
        so a 1-shard / zero-service spec reproduces the unsharded
        summary and trace hash byte for byte while shards >= 2 adds the
        per-shard and queue views.
        """
        shards = self.spec.sharding.shards if self.spec.sharding else 1
        num_blocks = shards * self.spec.code.k
        ops = _make_workload(self.spec, num_blocks, self._streams[1])
        trace, partitions = self._faultload(
            faultload, scenario.horizon, self._streams[9]
        )
        sim, system = self._sharded_closed_loop(
            scenario.clients, ops, trace, partitions,
            self._streams[8], self._streams[10],
        )
        armed = self._arm_byzantine(system.cluster, faultload, self._streams[12])
        meta_armed = self._arm_metadata_byzantine(
            system.cluster, faultload, self._streams[13]
        )
        tally = sim.run()
        service_spec = self.spec.service or ServiceTimeSpec()
        data = {
            "clients": scenario.clients,
            "think_time": scenario.think_time,
            "horizon": scenario.horizon,
            "shards": shards,
            "routing": sim.router.routing,
            "faultload": faultload.to_dict(),
            "latency_model": latency_spec.to_dict(),
            "service": service_spec.to_dict(),
            "ops_submitted": tally.reads_attempted + tally.writes_attempted,
            "virtual_duration": sim.sim.now,
            "summary": tally.summary(),
            "operation_latency": tally.operation_percentiles(),
            "per_shard": sim.shard_summaries(),
            "queues": queue_summary(
                sim.router.shards[0].coordinator.queues, sim.sim.now
            ),
            "trace_hash": sim.router.trace_hash(),
        }
        report = self._byzantine_report(
            faultload,
            system.cluster,
            armed,
            system.verifiers,
            meta_armed=meta_armed,
            repairs=system.repairs,
        )
        if report is not None:
            data["byzantine"] = report
        return data

    def _run_saturation(self) -> dict:
        """The ops/s-vs-clients saturation sweep over the sharded runtime.

        One fresh sharded closed-loop run per entry of
        ``scenario.client_counts`` against the *same* workload tape and
        faultload (streams 1 and 9, regenerated per point); each point
        draws its coordinator and service-queue streams from per-point
        children of stream 11, so points are independent — the fan-out
        unit of the saturation kind (:meth:`saturation_point`) — yet one
        seed reproduces the whole curve, point hashes included.
        """
        scenario = self.spec.scenario
        latency_spec = self.spec.latency or LatencySpec()
        faultload = scenario.faultload or FaultloadSpec()
        counts = scenario.client_counts or (1, 2, 4, 8, 16)
        shards = self.spec.sharding.shards if self.spec.sharding else 1
        for clients in counts:
            if int(clients) < 1:
                raise ConfigurationError(
                    f"client counts must be >= 1, got {int(clients)}"
                )
        spec_dict = self.spec.to_dict()
        payloads = [
            {
                "spec": spec_dict,
                "index": i,
                "clients": int(clients),
                "num_points": len(counts),
            }
            for i, clients in enumerate(counts)
        ]
        outs = self._map(saturation_point_task, payloads)
        points = [SaturationPoint(**out["point"]) for out in outs]
        digest = hashlib.sha256()
        for point in points:
            digest.update(point.trace_hash.encode("ascii"))
            digest.update(b"\n")
        service_spec = self.spec.service or ServiceTimeSpec()
        data = {
            "shards": shards,
            "routing": (
                self.spec.sharding.routing if self.spec.sharding else "interleave"
            ),
            "client_counts": [p.clients for p in points],
            "think_time": scenario.think_time,
            "horizon": scenario.horizon,
            "faultload": faultload.to_dict(),
            "latency_model": latency_spec.to_dict(),
            "service": service_spec.to_dict(),
            "points": [p.to_dict() for p in points],
            "knee_clients": knee_clients(points),
            "trace_hash": digest.hexdigest(),
        }
        reports = [out["report"] for out in outs]
        if any(report is not None for report in reports):
            data["byzantine"] = {"points": reports}
        return data

    def saturation_point(self, index: int, clients: int, num_points: int) -> dict:
        """One saturation curve point — the saturation fan-out unit.

        Regenerates the shared workload tape (stream 1) and faultload
        (stream 9) from freshly respawned seed streams, then draws this
        point's coordinator/service/Byzantine streams from child
        ``index`` of streams 11/12/13 — the same assignment the serial
        sweep makes, keyed by grid position so any worker count (and the
        inline path) produces the identical point.
        """
        self._streams = spawn_rngs(make_rng(self.spec.seed), _NUM_STREAMS)
        scenario = self.spec.scenario
        faultload = scenario.faultload or FaultloadSpec()
        shards = self.spec.sharding.shards if self.spec.sharding else 1
        num_blocks = shards * self.spec.code.k
        ops = _make_workload(self.spec, num_blocks, self._streams[1])
        trace, partitions = self._faultload(
            faultload, scenario.horizon, self._streams[9]
        )
        rng, service_rng = spawn_rngs(
            spawn_rngs(self._streams[11], num_points)[index], 2
        )
        byz_rng = spawn_rngs(self._streams[12], num_points)[index]
        meta_rng = spawn_rngs(self._streams[13], num_points)[index]
        sim, system = self._sharded_closed_loop(
            clients, ops, trace, partitions, rng, service_rng
        )
        # Per-point arming from stream-12/13 children: every point gets
        # its own corrupt set and coin streams, yet one seed still
        # reproduces the whole curve.
        armed = self._arm_byzantine(system.cluster, faultload, byz_rng)
        meta_armed = self._arm_metadata_byzantine(
            system.cluster, faultload, meta_rng
        )
        point = run_saturation_point(clients, sim)
        report = self._byzantine_report(
            faultload,
            system.cluster,
            armed,
            system.verifiers,
            meta_armed=meta_armed,
            repairs=system.repairs,
        )
        return {"point": point.to_dict(), "report": report}


def run_spec(spec: SystemSpec, *, jobs: int = 0) -> ScenarioResult:
    """One-call convenience: ``ScenarioRunner(spec, jobs=jobs).run()``."""
    return ScenarioRunner(spec, jobs=jobs).run()
