"""Name registries mapping declarative specs onto concrete classes.

Two registries make the facade extensible without touching call sites:

* the **quorum registry** builds any :class:`~repro.quorum.base.QuorumSystem`
  from a :class:`~repro.api.spec.QuorumSpec` (``trapezoid``, ``rowa``,
  ``majority``, ``grid``, ``tree``, ``voting``);
* the **protocol registry** builds any protocol engine satisfying
  :class:`~repro.api.build.ProtocolEngine` from a
  :class:`~repro.api.spec.SystemSpec` (``trap-erc``, ``trap-fr``,
  ``rowa``, ``majority``).

Comparative simulations and sweeps iterate over registry *names*; new
protocols plug in with :func:`register_protocol` and immediately become
available to ``repro run --config``, the comparison scenario and the
facade tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.api.spec import LatencySpec, QuorumSpec, ServiceTimeSpec, SystemSpec
from repro.cluster.network import (
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    TwoTierLatency,
    UniformLatency,
)
from repro.cluster.node import (
    ExponentialServiceTime,
    FixedServiceTime,
    ServiceTimeModel,
)
from repro.core.replication import MajorityProtocol, RowaProtocol
from repro.core.trap_erc import TrapErcProtocol
from repro.core.trap_fr import TrapFrProtocol
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.grid import GridSystem
from repro.quorum.majority import MajoritySystem
from repro.quorum.rowa import RowaSystem
from repro.quorum.trapezoid import TrapezoidQuorum, TrapezoidShape, TrapezoidSystem
from repro.quorum.tree import TreeSystem
from repro.quorum.voting import WeightedVotingSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.erasure.code import MDSCode
    from repro.erasure.stripe import StripeLayout

__all__ = [
    "QuorumEntry",
    "ProtocolEntry",
    "register_quorum",
    "register_protocol",
    "quorum_names",
    "protocol_names",
    "quorum_entry",
    "protocol_entry",
    "build_quorum_system",
    "build_trapezoid_quorum",
    "build_latency_model",
    "build_service_model",
]


def build_latency_model(spec: LatencySpec) -> LatencyModel:
    """The :class:`~repro.cluster.network.LatencyModel` a spec describes."""
    if spec.kind == "fixed":
        return FixedLatency(spec.delay)
    if spec.kind == "uniform":
        return UniformLatency(spec.low, spec.high)
    if spec.kind == "two_tier":
        return TwoTierLatency(
            local=spec.local,
            remote=spec.remote,
            rack_size=spec.rack_size,
            jitter=spec.jitter,
        )
    return LognormalLatency(spec.mu, spec.sigma)


def build_service_model(spec: ServiceTimeSpec | None) -> ServiceTimeModel | None:
    """The node service-time model a spec describes (None = zero service)."""
    if spec is None or spec.kind == "none":
        return None
    if spec.kind == "fixed":
        return FixedServiceTime(spec.time)
    return ExponentialServiceTime(spec.time)


# --------------------------------------------------------------------- #
# quorum registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class QuorumEntry:
    """One registered quorum system kind."""

    name: str
    system_class: type[QuorumSystem]
    builder: Callable[[QuorumSpec], QuorumSystem]


_QUORUMS: dict[str, QuorumEntry] = {}


def register_quorum(name: str, system_class: type[QuorumSystem]):
    """Decorator registering a ``QuorumSpec -> QuorumSystem`` builder."""

    def decorator(builder: Callable[[QuorumSpec], QuorumSystem]):
        if name in _QUORUMS:
            raise ConfigurationError(f"quorum kind {name!r} already registered")
        _QUORUMS[name] = QuorumEntry(name, system_class, builder)
        return builder

    return decorator


def quorum_names() -> tuple[str, ...]:
    """Registered quorum kinds, sorted."""
    return tuple(sorted(_QUORUMS))


def quorum_entry(name: str) -> QuorumEntry:
    try:
        return _QUORUMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown quorum kind {name!r} (registered: {quorum_names()})"
        ) from None


def build_quorum_system(spec: QuorumSpec) -> QuorumSystem:
    """Instantiate the quorum system a spec describes."""
    return quorum_entry(spec.kind).builder(spec)


def build_trapezoid_quorum(spec: QuorumSpec) -> TrapezoidQuorum:
    """The :class:`TrapezoidQuorum` parameter object of a trapezoid spec.

    The trapezoid protocol engines consume this richer object (shape plus
    write vector) rather than the generic :class:`QuorumSystem` facade.
    """
    if spec.kind != "trapezoid":
        raise ConfigurationError(
            f"protocol requires a trapezoid quorum, got kind {spec.kind!r}"
        )
    shape = TrapezoidShape(spec.a, spec.b, spec.h)
    if spec.w is None or isinstance(spec.w, int):
        return TrapezoidQuorum.uniform(shape, spec.w)
    return TrapezoidQuorum(shape, tuple(spec.w))


@register_quorum("trapezoid", TrapezoidSystem)
def _build_trapezoid_system(spec: QuorumSpec) -> TrapezoidSystem:
    return TrapezoidSystem(build_trapezoid_quorum(spec))


@register_quorum("rowa", RowaSystem)
def _build_rowa_system(spec: QuorumSpec) -> RowaSystem:
    return RowaSystem(spec.size)


@register_quorum("majority", MajoritySystem)
def _build_majority_system(spec: QuorumSpec) -> MajoritySystem:
    return MajoritySystem(spec.size)


@register_quorum("grid", GridSystem)
def _build_grid_system(spec: QuorumSpec) -> GridSystem:
    return GridSystem(spec.rows, spec.cols)


@register_quorum("tree", TreeSystem)
def _build_tree_system(spec: QuorumSpec) -> TreeSystem:
    return TreeSystem(spec.height)


@register_quorum("voting", WeightedVotingSystem)
def _build_voting_system(spec: QuorumSpec) -> WeightedVotingSystem:
    weights = spec.weights if spec.weights is not None else (1,) * spec.size
    return WeightedVotingSystem(weights, spec.read_votes, spec.write_votes)


# --------------------------------------------------------------------- #
# protocol registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProtocolEntry:
    """One registered protocol engine kind.

    ``builder(spec, cluster, code, layout)`` returns an initialized-free
    engine (callers load data through ``engine.initialize``);
    ``needs_trapezoid`` marks engines that consume the trapezoid quorum
    geometry (validated against the paper's eq. 5 in ``build_system``);
    ``system_builder(spec)``, when given, supplies the
    :class:`QuorumSystem` geometry backing the availability hooks (so the
    hooks model the engine, not whatever the spec's quorum section says —
    the flat baselines use this). Without one, the geometry is built from
    ``spec.quorum``.
    """

    name: str
    engine_class: type
    builder: Callable[..., object]
    needs_trapezoid: bool = False
    supports_repair: bool = False
    system_builder: Callable[[SystemSpec], QuorumSystem] | None = None


_PROTOCOLS: dict[str, ProtocolEntry] = {}


def register_protocol(
    name: str,
    engine_class: type,
    *,
    needs_trapezoid: bool = False,
    supports_repair: bool = False,
    system_builder: Callable[[SystemSpec], QuorumSystem] | None = None,
):
    """Decorator registering a protocol-engine builder."""

    def decorator(builder: Callable[..., object]):
        if name in _PROTOCOLS:
            raise ConfigurationError(f"protocol {name!r} already registered")
        _PROTOCOLS[name] = ProtocolEntry(
            name, engine_class, builder, needs_trapezoid, supports_repair,
            system_builder,
        )
        return builder

    return decorator


def protocol_names() -> tuple[str, ...]:
    """Registered protocol names, sorted."""
    return tuple(sorted(_PROTOCOLS))


def protocol_entry(name: str) -> ProtocolEntry:
    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r} (registered: {protocol_names()})"
        ) from None


@register_protocol(
    "trap-erc", TrapErcProtocol, needs_trapezoid=True, supports_repair=True
)
def _build_trap_erc(
    spec: SystemSpec, cluster: "Cluster", code: "MDSCode", layout: "StripeLayout",
    coordinator=None, verifier=None,
) -> TrapErcProtocol:
    quorum = build_trapezoid_quorum(spec.quorum)
    return TrapErcProtocol(
        cluster, code, quorum, layout=layout, stripe_id="api-stripe",
        coordinator=coordinator, verifier=verifier,
    )


@register_protocol("trap-fr", TrapFrProtocol, needs_trapezoid=True)
def _build_trap_fr(
    spec: SystemSpec, cluster: "Cluster", code: "MDSCode", layout: "StripeLayout",
    coordinator=None, verifier=None,
) -> TrapFrProtocol:
    quorum = build_trapezoid_quorum(spec.quorum)
    return TrapFrProtocol(
        cluster, spec.code.n, spec.code.k, quorum, layout=layout,
        stripe_id="api-stripe", coordinator=coordinator, verifier=verifier,
    )


def _flat_system_builder(kind: str, system_class: type):
    """Availability geometry of a flat engine: the replica-group system.

    Flat engines always replicate on the n - k + 1 consistency group, so
    their hooks are derived from the protocol itself — a spec'd quorum of
    another size or kind would describe a different system than the
    engine runs. Trapezoid specs are tolerated (comparison scenarios
    share one trapezoid spec across trap-* and flat engines); anything
    else contradicting the protocol is rejected.
    """

    def build(spec: SystemSpec) -> QuorumSystem:
        group = spec.code.group_size
        if spec.quorum.kind == kind:
            if spec.quorum.size != group:
                raise ConfigurationError(
                    f"{kind} replicates on the n - k + 1 = {group} node "
                    f"consistency group, but quorum.size = "
                    f"{spec.quorum.size}; omit quorum or set size = {group}"
                )
        elif spec.quorum.kind != "trapezoid":
            raise ConfigurationError(
                f"quorum kind {spec.quorum.kind!r} contradicts protocol "
                f"{kind!r}; omit quorum, or use kind {kind!r} with "
                f"size = {group}"
            )
        return system_class(group)

    return build


@register_protocol(
    "rowa", RowaProtocol, system_builder=_flat_system_builder("rowa", RowaSystem)
)
def _build_rowa(
    spec: SystemSpec, cluster: "Cluster", code: "MDSCode", layout: "StripeLayout",
    coordinator=None, verifier=None,
) -> RowaProtocol:
    # Flat baselines replicate every block on block 0's consistency group:
    # the same n - k + 1 node budget the trapezoid defends (the setting of
    # examples/protocol_comparison.py).
    return RowaProtocol(
        cluster, list(layout.consistency_group(0)), "api-stripe",
        coordinator=coordinator, verifier=verifier,
    )


@register_protocol(
    "majority",
    MajorityProtocol,
    system_builder=_flat_system_builder("majority", MajoritySystem),
)
def _build_majority(
    spec: SystemSpec, cluster: "Cluster", code: "MDSCode", layout: "StripeLayout",
    coordinator=None, verifier=None,
) -> MajorityProtocol:
    return MajorityProtocol(
        cluster, list(layout.consistency_group(0)), "api-stripe",
        coordinator=coordinator, verifier=verifier,
    )
