"""``build_system``: one factory from a :class:`SystemSpec` to a live system.

This is the construction boilerplate that every entry point used to
hand-wire (cluster + code + quorum + placement + engine + repair); the
factory composes the existing constructors — it does not fork them — and
returns a :class:`BuiltSystem` handle bundling all the pieces plus the
derived deterministic RNG streams.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.api.registry import (
    build_quorum_system,
    build_trapezoid_quorum,
    protocol_entry,
)
from repro.api.spec import SystemSpec
from repro.cluster.cluster import Cluster
from repro.cluster.rng import make_rng, spawn_rngs
from repro.core.repair import RepairService
from repro.core.results import ReadResult, WriteResult
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.coordinator import Coordinator
from repro.storage.placement import IdentityPlacement, RotatingPlacement

__all__ = ["ProtocolEngine", "BuiltSystem", "build_system"]


@runtime_checkable
class ProtocolEngine(Protocol):
    """Minimal surface every registered protocol engine exposes.

    ``initialize`` loads version-0 blocks, ``read_block``/``write_block``
    run one quorum operation and report success plus message cost.
    Availability hooks (closed forms, quorum predicates) live on the
    :class:`BuiltSystem` wrapper, which delegates to the spec's
    :class:`~repro.quorum.base.QuorumSystem` geometry.
    """

    def initialize(self, data: np.ndarray) -> None: ...

    def read_block(self, i: int) -> ReadResult: ...

    def write_block(self, i: int, value: np.ndarray) -> WriteResult: ...


def _layout_for(spec: SystemSpec, stripe_index: int) -> StripeLayout:
    policies = {"identity": IdentityPlacement, "rotating": RotatingPlacement}
    policy = policies[spec.placement.kind](
        spec.code.n, spec.code.k, spec.cluster.num_nodes
    )
    return policy.layout_for(stripe_index)


@dataclass
class BuiltSystem:
    """A live, ready-to-initialize system plus its construction context."""

    spec: SystemSpec
    cluster: Cluster
    code: MDSCode
    layout: StripeLayout
    engine: ProtocolEngine
    system: QuorumSystem
    quorum: TrapezoidQuorum | None
    repair: RepairService | None
    rng: np.random.Generator = field(repr=False)
    #: execution path injected into the engine (None = default instant)
    coordinator: Coordinator | None = None

    @property
    def num_blocks(self) -> int:
        """Addressable data blocks of the engine (k for every protocol)."""
        return self.code.k

    def initialize(self, data: np.ndarray | None = None) -> np.ndarray:
        """Load version-0 blocks; random seeded data when none is given.

        Returns the loaded (k, block_length) array so callers can use it
        as the consistency oracle or share it across engines.
        """
        if data is None:
            data = (
                self.rng.integers(
                    0, 256,
                    size=(self.code.k, self.spec.workload.block_length),
                    dtype=np.int64,
                ).astype(np.uint8)
            )
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.code.k:
            raise ConfigurationError(
                f"data must have shape (k={self.code.k}, L), got {data.shape}"
            )
        self.engine.initialize(data)
        return data

    def repair_fn(self):
        """Zero-argument anti-entropy callable, or None."""
        return self.repair.sync_all if self.repair is not None else None

    # -- availability hooks (delegate to the quorum geometry) ----------- #

    def write_availability(self, p) -> np.ndarray:
        """P(a write quorum exists) under i.i.d. node availability p."""
        return self.system.write_availability(p)

    def read_availability(self, p) -> np.ndarray:
        """P(a read quorum exists) under i.i.d. node availability p."""
        return self.system.read_availability(p)


def _builder_accepts_coordinator(builder) -> bool:
    try:
        parameters = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    if "coordinator" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def build_system(
    spec: SystemSpec,
    stripe_index: int = 0,
    coordinator_factory: Callable[[Cluster], Coordinator] | None = None,
) -> BuiltSystem:
    """Construct the full system a spec describes (uninitialized).

    The cluster, code, layout and engine are freshly built; the engine's
    RNG stream is child 0 of ``spec.seed`` (scenario drivers use further
    children, so initialization data and failure schedules never share a
    stream). ``stripe_index`` selects the placement rotation for callers
    driving several stripes.

    ``coordinator_factory`` injects an execution path: it receives the
    freshly built cluster and returns the coordinator handed to the
    engine builder (the latency scenario passes an
    :class:`~repro.runtime.event.EventCoordinator` factory here). Without
    one, engines run on their default instant path.
    """
    entry = protocol_entry(spec.protocol)
    group = spec.code.group_size
    if entry.needs_trapezoid:
        quorum = build_trapezoid_quorum(spec.quorum)
        if quorum.shape.total_nodes != group:
            raise ConfigurationError(
                f"trapezoid holds {quorum.shape.total_nodes} nodes but "
                f"(n={spec.code.n}, k={spec.code.k}) requires "
                f"Nbnode = n - k + 1 = {group}"
            )
    else:
        quorum = None
    # The availability geometry: registry entries may supply their own
    # (the flat baselines do, so the hooks model the engine's replica
    # group); otherwise it is built from the spec's quorum section.
    if entry.system_builder is not None:
        system = entry.system_builder(spec)
    else:
        system = build_quorum_system(spec.quorum)

    cluster = Cluster(spec.cluster.num_nodes)
    code = MDSCode(spec.code.n, spec.code.k, construction=spec.code.construction)
    layout = _layout_for(spec, stripe_index)
    coordinator = None
    if coordinator_factory is not None:
        if not _builder_accepts_coordinator(entry.builder):
            raise ConfigurationError(
                f"protocol {spec.protocol!r} does not support coordinator "
                "injection (its registered builder takes no 'coordinator' "
                "keyword); it cannot run on the event-driven path"
            )
        coordinator = coordinator_factory(cluster)
        engine = entry.builder(spec, cluster, code, layout, coordinator=coordinator)
    else:
        engine = entry.builder(spec, cluster, code, layout)
    if not entry.supports_repair:
        repair = None
    elif coordinator is None:
        repair = RepairService(engine)
    else:
        # Anti-entropy runs as out-of-band instant maintenance even when
        # the engine itself is event-driven: a second engine instance on
        # the same cluster (protocol state lives on the nodes) with the
        # default instant coordinator backs the repair service, so repair
        # passes never re-enter the running event loop.
        repair = RepairService(entry.builder(spec, cluster, code, layout))
    (rng,) = spawn_rngs(make_rng(spec.seed), 1)
    return BuiltSystem(
        spec=spec,
        cluster=cluster,
        code=code,
        layout=layout,
        engine=engine,
        system=system,
        quorum=quorum,
        repair=repair,
        rng=rng,
        coordinator=coordinator,
    )
