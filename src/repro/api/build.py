"""``build_system``: one factory from a :class:`SystemSpec` to a live system.

This is the construction boilerplate that every entry point used to
hand-wire (cluster + code + quorum + placement + engine + repair); the
factory composes the existing constructors — it does not fork them — and
returns a :class:`BuiltSystem` handle bundling all the pieces plus the
derived deterministic RNG streams.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.api.registry import (
    build_latency_model,
    build_quorum_system,
    build_service_model,
    build_trapezoid_quorum,
    protocol_entry,
)
from repro.api.spec import LatencySpec, QuorumSpec, SystemSpec
from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator
from repro.cluster.network import TwoTierLatency
from repro.cluster.rng import make_rng, spawn_rngs
from repro.core.repair import RepairService
from repro.core.results import ReadResult, WriteResult
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.runtime.coordinator import Coordinator
from repro.runtime.event import (
    EventCoordinator,
    NodeServiceQueue,
    make_service_queues,
)
from repro.runtime.rounds import RetryPolicy
from repro.runtime.router import Shard, ShardRouter
from repro.runtime.verify import BlockVerifier, MetadataQuorum
from repro.storage.placement import IdentityPlacement, RotatingPlacement

__all__ = [
    "ProtocolEngine",
    "BuiltSystem",
    "build_system",
    "ShardedSystem",
    "build_sharded_system",
]


@runtime_checkable
class ProtocolEngine(Protocol):
    """Minimal surface every registered protocol engine exposes.

    ``initialize`` loads version-0 blocks, ``read_block``/``write_block``
    run one quorum operation and report success plus message cost.
    Availability hooks (closed forms, quorum predicates) live on the
    :class:`BuiltSystem` wrapper, which delegates to the spec's
    :class:`~repro.quorum.base.QuorumSystem` geometry.
    """

    def initialize(self, data: np.ndarray) -> None: ...

    def read_block(self, i: int) -> ReadResult: ...

    def write_block(self, i: int, value: np.ndarray) -> WriteResult: ...


def _layout_for(spec: SystemSpec, stripe_index: int) -> StripeLayout:
    policies = {"identity": IdentityPlacement, "rotating": RotatingPlacement}
    policy = policies[spec.placement.kind](
        spec.code.n, spec.code.k, spec.cluster.num_nodes
    )
    return policy.layout_for(stripe_index)


@dataclass
class BuiltSystem:
    """A live, ready-to-initialize system plus its construction context."""

    spec: SystemSpec
    cluster: Cluster
    code: MDSCode
    layout: StripeLayout
    engine: ProtocolEngine
    system: QuorumSystem
    quorum: TrapezoidQuorum | None
    repair: RepairService | None
    rng: np.random.Generator = field(repr=False)
    #: execution path injected into the engine (None = default instant)
    coordinator: Coordinator | None = None
    #: verified-read digest/version authority (None = fail-stop trust)
    verifier: BlockVerifier | None = None

    @property
    def num_blocks(self) -> int:
        """Addressable data blocks of the engine (k for every protocol)."""
        return self.code.k

    def initialize(self, data: np.ndarray | None = None) -> np.ndarray:
        """Load version-0 blocks; random seeded data when none is given.

        Returns the loaded (k, block_length) array so callers can use it
        as the consistency oracle or share it across engines.
        """
        if data is None:
            data = (
                self.rng.integers(
                    0, 256,
                    size=(self.code.k, self.spec.workload.block_length),
                    dtype=np.int64,
                ).astype(np.uint8)
            )
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.code.k:
            raise ConfigurationError(
                f"data must have shape (k={self.code.k}, L), got {data.shape}"
            )
        self.engine.initialize(data)
        return data

    def repair_fn(self):
        """Zero-argument anti-entropy callable, or None."""
        return self.repair.sync_all if self.repair is not None else None

    # -- availability hooks (delegate to the quorum geometry) ----------- #

    def write_availability(self, p) -> np.ndarray:
        """P(a write quorum exists) under i.i.d. node availability p."""
        return self.system.write_availability(p)

    def read_availability(self, p) -> np.ndarray:
        """P(a read quorum exists) under i.i.d. node availability p."""
        return self.system.read_availability(p)


def _builder_accepts(builder, keyword: str) -> bool:
    try:
        parameters = inspect.signature(builder).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    if keyword in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _builder_accepts_coordinator(builder) -> bool:
    return _builder_accepts(builder, "coordinator")


def _metadata_node_count(spec: SystemSpec) -> int:
    """Extra cluster nodes appended for the metadata tier (0 = disabled)."""
    return spec.metadata.nodes if spec.metadata is not None else 0


def _make_verifier(
    spec: SystemSpec, cluster: Cluster, namespace: str = "api-stripe"
) -> BlockVerifier | None:
    """The :class:`BlockVerifier` a spec's metadata section describes.

    Metadata nodes occupy the ids *after* the data nodes (the cluster is
    built ``num_nodes + metadata.nodes`` wide), so data placement,
    faultloads and Byzantine arming — all expressed over
    ``spec.cluster.num_nodes`` — never touch them. The quorum thresholds
    derive from the registry system named by ``metadata.quorum``
    (majority by default), sized to the metadata tier.
    """
    if spec.metadata is None:
        return None
    meta = spec.metadata
    first = spec.cluster.num_nodes
    node_ids = range(first, first + meta.nodes)
    system = build_quorum_system(QuorumSpec(kind=meta.quorum, size=meta.nodes))
    quorum = MetadataQuorum.from_system(node_ids, system, f=meta.f)
    return BlockVerifier(
        cluster, quorum, namespace=namespace, signed=meta.effective_signed
    )


def _resolve_protocol(spec: SystemSpec):
    """Registry entry, trapezoid quorum (or None) and availability geometry.

    Shared front half of :func:`build_system` and
    :func:`build_sharded_system`: validates the trapezoid against the
    code's consistency-group size and picks the availability geometry —
    registry entries may supply their own (the flat baselines do, so the
    hooks model the engine's replica group); otherwise it is built from
    the spec's quorum section.
    """
    entry = protocol_entry(spec.protocol)
    group = spec.code.group_size
    if entry.needs_trapezoid:
        quorum = build_trapezoid_quorum(spec.quorum)
        if quorum.shape.total_nodes != group:
            raise ConfigurationError(
                f"trapezoid holds {quorum.shape.total_nodes} nodes but "
                f"(n={spec.code.n}, k={spec.code.k}) requires "
                f"Nbnode = n - k + 1 = {group}"
            )
    else:
        quorum = None
    if entry.system_builder is not None:
        system = entry.system_builder(spec)
    else:
        system = build_quorum_system(spec.quorum)
    return entry, quorum, system


def build_system(
    spec: SystemSpec,
    stripe_index: int = 0,
    coordinator_factory: Callable[[Cluster], Coordinator] | None = None,
) -> BuiltSystem:
    """Construct the full system a spec describes (uninitialized).

    The cluster, code, layout and engine are freshly built; the engine's
    RNG stream is child 0 of ``spec.seed`` (scenario drivers use further
    children, so initialization data and failure schedules never share a
    stream). ``stripe_index`` selects the placement rotation for callers
    driving several stripes.

    ``coordinator_factory`` injects an execution path: it receives the
    freshly built cluster and returns the coordinator handed to the
    engine builder (the latency scenario passes an
    :class:`~repro.runtime.event.EventCoordinator` factory here). Without
    one, engines run on their default instant path.
    """
    entry, quorum, system = _resolve_protocol(spec)
    cluster = Cluster(spec.cluster.num_nodes + _metadata_node_count(spec))
    code = MDSCode(spec.code.n, spec.code.k, construction=spec.code.construction)
    layout = _layout_for(spec, stripe_index)
    verifier = _make_verifier(spec, cluster)
    if verifier is not None and not _builder_accepts(entry.builder, "verifier"):
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support verified reads "
            "(its registered builder takes no 'verifier' keyword); drop "
            "the metadata section or register a verifier-aware builder"
        )
    extra = {} if verifier is None else {"verifier": verifier}
    coordinator = None
    if coordinator_factory is not None:
        if not _builder_accepts_coordinator(entry.builder):
            raise ConfigurationError(
                f"protocol {spec.protocol!r} does not support coordinator "
                "injection (its registered builder takes no 'coordinator' "
                "keyword); it cannot run on the event-driven path"
            )
        coordinator = coordinator_factory(cluster)
        engine = entry.builder(
            spec, cluster, code, layout, coordinator=coordinator, **extra
        )
    else:
        engine = entry.builder(spec, cluster, code, layout, **extra)
    if not entry.supports_repair:
        repair = None
    elif coordinator is None and verifier is None:
        repair = RepairService(engine)
    else:
        # Anti-entropy runs as out-of-band instant maintenance even when
        # the engine itself is event-driven: a second engine instance on
        # the same cluster (protocol state lives on the nodes) with the
        # default instant coordinator backs the repair service, so repair
        # passes never re-enter the running event loop. The repair engine
        # is built *without* a verifier (engine-level verified reads would
        # spend metadata rounds per quorum read); instead the service
        # itself verifies candidate blocks against the metadata tier via
        # its own verifier instance — its counters stay separate from the
        # engine's read-path counters.
        repair = RepairService(
            entry.builder(spec, cluster, code, layout),
            verifier=None if verifier is None else _make_verifier(spec, cluster),
        )
    (rng,) = spawn_rngs(make_rng(spec.seed), 1)
    return BuiltSystem(
        spec=spec,
        cluster=cluster,
        code=code,
        layout=layout,
        engine=engine,
        system=system,
        quorum=quorum,
        repair=repair,
        rng=rng,
        coordinator=coordinator,
        verifier=verifier,
    )


@dataclass
class ShardedSystem:
    """A live multi-volume runtime: shards behind one front-end router.

    The scale-out counterpart of :class:`BuiltSystem`: ``shards.shards``
    per-shard engines (one stripe family each, placed via the placement
    policy's stripe rotation) run on their own
    :class:`~repro.runtime.event.EventCoordinator`, all sharing one
    simulator, one cluster and — when a service-time model is configured
    — one set of per-node FIFO service queues, so concurrent shards
    genuinely contend. ``router`` is the dispatch front end.
    """

    spec: SystemSpec
    cluster: Cluster
    code: MDSCode
    system: QuorumSystem
    simulator: Simulator
    router: ShardRouter
    shards: list[Shard]
    queues: dict[int, NodeServiceQueue] | None
    repairs: list[RepairService]
    rng: np.random.Generator = field(repr=False)
    #: per-shard verified-read authorities (empty = fail-stop trust)
    verifiers: list[BlockVerifier] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_blocks(self) -> int:
        """Addressable logical blocks of the volume: shards * k."""
        return self.router.num_blocks

    def initialize(self, data: np.ndarray | None = None) -> np.ndarray:
        """Load version-0 blocks on every shard.

        ``data`` must have shape ``(num_shards, k, L)``; when omitted,
        seeded random payloads are drawn shard by shard (shard 0 draws
        exactly what the unsharded :meth:`BuiltSystem.initialize` would,
        keeping 1-shard runs bit-identical). Returns the loaded array.
        """
        k = self.code.k
        length = self.spec.workload.block_length
        if data is None:
            data = np.stack(
                [
                    self.rng.integers(
                        0, 256, size=(k, length), dtype=np.int64
                    ).astype(np.uint8)
                    for _ in self.shards
                ]
            )
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 3 or data.shape[0] != len(self.shards) or data.shape[1] != k:
            raise ConfigurationError(
                f"data must have shape (shards={len(self.shards)}, k={k}, L), "
                f"got {data.shape}"
            )
        for shard, shard_data in zip(self.shards, data):
            shard.engine.initialize(shard_data)
        return data

    def trace_hash(self) -> str:
        return self.router.trace_hash()


def _coordinator_site(latency_model, index: int, num_nodes: int) -> int | None:
    """Where shard ``index``'s coordinator sits, for per-link models.

    Topology-aware models place the per-shard front ends round-robin
    across the racks (a coordinator colocated with rack ``index mod
    num_racks``); distribution-only models ignore the site, so ``None``
    keeps them exactly on their historical draw sequence.
    """
    if not isinstance(latency_model, TwoTierLatency):
        return None
    num_racks = max(1, -(-num_nodes // latency_model.rack_size))
    return (index % num_racks) * latency_model.rack_size


def build_sharded_system(
    spec: SystemSpec,
    *,
    simulator: Simulator | None = None,
    rng=None,
    service_rng=None,
    record_trace: bool = False,
) -> ShardedSystem:
    """Construct the sharded multi-volume runtime a spec describes.

    ``spec.sharding`` fixes the shard count and routing,
    ``spec.service`` the per-node service-time model, ``spec.latency``
    the message-leg model and timeout/retry policy. Every shard's engine
    comes from the protocol registry with its own event coordinator
    injected (the same ``coordinator`` keyword :func:`build_system`
    validates), so registered protocols plug into the router without
    bespoke wiring.

    ``rng`` seeds coordinator latency sampling (one shard consumes it
    directly — bit-identical to handing it to a lone
    :class:`EventCoordinator`; several shards spawn one child stream
    each); ``service_rng`` seeds the per-node service queues. Left at
    ``None`` they default to child streams 8 and 10 of ``spec.seed`` —
    the same allocation :class:`~repro.api.runner.ScenarioRunner` uses —
    so a bare ``build_sharded_system(spec)`` is reproducible from the
    spec alone. The initialization stream is child 0 of ``spec.seed``,
    exactly as in :func:`build_system`.
    """
    sharding = spec.sharding
    num_shards = sharding.shards if sharding is not None else 1
    routing = sharding.routing if sharding is not None else "interleave"
    route_seed = sharding.route_seed if sharding is not None else 0
    entry, _, system = _resolve_protocol(spec)
    if not _builder_accepts_coordinator(entry.builder):
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support coordinator "
            "injection (its registered builder takes no 'coordinator' "
            "keyword); it cannot run on the sharded event-driven path"
        )
    if spec.metadata is not None and not _builder_accepts(entry.builder, "verifier"):
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support verified reads "
            "(its registered builder takes no 'verifier' keyword); drop "
            "the metadata section or register a verifier-aware builder"
        )
    if rng is None or service_rng is None:
        seed_streams = spawn_rngs(make_rng(spec.seed), 11)
        if rng is None:
            rng = seed_streams[8]
        if service_rng is None:
            service_rng = seed_streams[10]

    simulator = simulator if simulator is not None else Simulator()
    cluster = Cluster(spec.cluster.num_nodes + _metadata_node_count(spec))
    code = MDSCode(spec.code.n, spec.code.k, construction=spec.code.construction)
    latency_spec = spec.latency or LatencySpec()
    latency_model = build_latency_model(latency_spec)
    policy = RetryPolicy(timeout=latency_spec.timeout, retries=latency_spec.retries)
    service_model = build_service_model(spec.service)
    queues = (
        make_service_queues(
            simulator, spec.cluster.num_nodes, service_model, rng=service_rng
        )
        if service_model is not None
        else None
    )
    rng = make_rng(rng)
    coordinator_rngs = [rng] if num_shards == 1 else spawn_rngs(rng, num_shards)
    shards: list[Shard] = []
    repairs: list[RepairService] = []
    verifiers: list[BlockVerifier] = []
    for index in range(num_shards):
        layout = _layout_for(spec, index)
        coordinator = EventCoordinator(
            cluster,
            simulator,
            latency=latency_model,
            rng=coordinator_rngs[index],
            policy=policy,
            record_trace=record_trace,
            queues=queues,
            site=_coordinator_site(latency_model, index, spec.cluster.num_nodes),
        )
        # Shard 0 keeps the unsharded metadata namespace so a 1-shard
        # system stays key-identical to build_system; further shards get
        # their own (all shards share the one metadata tier).
        namespace = "api-stripe" if index == 0 else f"api-stripe-{index}"
        verifier = _make_verifier(spec, cluster, namespace=namespace)
        extra = {} if verifier is None else {"verifier": verifier}
        if verifier is not None:
            verifiers.append(verifier)
        engine = entry.builder(
            spec, cluster, code, layout, coordinator=coordinator, **extra
        )
        shards.append(Shard(index, engine, coordinator, code.k))
        if entry.supports_repair:
            # Out-of-band anti-entropy on the instant path, one service
            # per stripe family (see build_system's repair note; the
            # repair engine is unverified but the service checks its
            # candidates against this shard's metadata namespace).
            repairs.append(
                RepairService(
                    entry.builder(spec, cluster, code, layout),
                    verifier=None
                    if verifier is None
                    else _make_verifier(spec, cluster, namespace=namespace),
                )
            )
    router = ShardRouter(shards, routing=routing, route_seed=route_seed)
    (init_rng,) = spawn_rngs(make_rng(spec.seed), 1)
    return ShardedSystem(
        spec=spec,
        cluster=cluster,
        code=code,
        system=system,
        simulator=simulator,
        router=router,
        shards=shards,
        queues=queues,
        repairs=repairs,
        rng=init_rng,
        verifiers=verifiers,
    )
