"""``build_system``: one factory from a :class:`SystemSpec` to a live system.

This is the construction boilerplate that every entry point used to
hand-wire (cluster + code + quorum + placement + engine + repair); the
factory composes the existing constructors — it does not fork them — and
returns a :class:`BuiltSystem` handle bundling all the pieces plus the
derived deterministic RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.api.registry import (
    build_quorum_system,
    build_trapezoid_quorum,
    protocol_entry,
)
from repro.api.spec import SystemSpec
from repro.cluster.cluster import Cluster
from repro.cluster.rng import make_rng, spawn_rngs
from repro.core.repair import RepairService
from repro.core.results import ReadResult, WriteResult
from repro.erasure.code import MDSCode
from repro.erasure.stripe import StripeLayout
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.trapezoid import TrapezoidQuorum
from repro.storage.placement import IdentityPlacement, RotatingPlacement

__all__ = ["ProtocolEngine", "BuiltSystem", "build_system"]


@runtime_checkable
class ProtocolEngine(Protocol):
    """Minimal surface every registered protocol engine exposes.

    ``initialize`` loads version-0 blocks, ``read_block``/``write_block``
    run one quorum operation and report success plus message cost.
    Availability hooks (closed forms, quorum predicates) live on the
    :class:`BuiltSystem` wrapper, which delegates to the spec's
    :class:`~repro.quorum.base.QuorumSystem` geometry.
    """

    def initialize(self, data: np.ndarray) -> None: ...

    def read_block(self, i: int) -> ReadResult: ...

    def write_block(self, i: int, value: np.ndarray) -> WriteResult: ...


def _layout_for(spec: SystemSpec, stripe_index: int) -> StripeLayout:
    policies = {"identity": IdentityPlacement, "rotating": RotatingPlacement}
    policy = policies[spec.placement.kind](
        spec.code.n, spec.code.k, spec.cluster.num_nodes
    )
    return policy.layout_for(stripe_index)


@dataclass
class BuiltSystem:
    """A live, ready-to-initialize system plus its construction context."""

    spec: SystemSpec
    cluster: Cluster
    code: MDSCode
    layout: StripeLayout
    engine: ProtocolEngine
    system: QuorumSystem
    quorum: TrapezoidQuorum | None
    repair: RepairService | None
    rng: np.random.Generator = field(repr=False)

    @property
    def num_blocks(self) -> int:
        """Addressable data blocks of the engine (k for every protocol)."""
        return self.code.k

    def initialize(self, data: np.ndarray | None = None) -> np.ndarray:
        """Load version-0 blocks; random seeded data when none is given.

        Returns the loaded (k, block_length) array so callers can use it
        as the consistency oracle or share it across engines.
        """
        if data is None:
            data = (
                self.rng.integers(
                    0, 256,
                    size=(self.code.k, self.spec.workload.block_length),
                    dtype=np.int64,
                ).astype(np.uint8)
            )
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.code.k:
            raise ConfigurationError(
                f"data must have shape (k={self.code.k}, L), got {data.shape}"
            )
        self.engine.initialize(data)
        return data

    def repair_fn(self):
        """Zero-argument anti-entropy callable, or None."""
        return self.repair.sync_all if self.repair is not None else None

    # -- availability hooks (delegate to the quorum geometry) ----------- #

    def write_availability(self, p) -> np.ndarray:
        """P(a write quorum exists) under i.i.d. node availability p."""
        return self.system.write_availability(p)

    def read_availability(self, p) -> np.ndarray:
        """P(a read quorum exists) under i.i.d. node availability p."""
        return self.system.read_availability(p)


def build_system(spec: SystemSpec, stripe_index: int = 0) -> BuiltSystem:
    """Construct the full system a spec describes (uninitialized).

    The cluster, code, layout and engine are freshly built; the engine's
    RNG stream is child 0 of ``spec.seed`` (scenario drivers use further
    children, so initialization data and failure schedules never share a
    stream). ``stripe_index`` selects the placement rotation for callers
    driving several stripes.
    """
    entry = protocol_entry(spec.protocol)
    group = spec.code.group_size
    if entry.needs_trapezoid:
        quorum = build_trapezoid_quorum(spec.quorum)
        if quorum.shape.total_nodes != group:
            raise ConfigurationError(
                f"trapezoid holds {quorum.shape.total_nodes} nodes but "
                f"(n={spec.code.n}, k={spec.code.k}) requires "
                f"Nbnode = n - k + 1 = {group}"
            )
    else:
        quorum = None
    # The availability geometry: registry entries may supply their own
    # (the flat baselines do, so the hooks model the engine's replica
    # group); otherwise it is built from the spec's quorum section.
    if entry.system_builder is not None:
        system = entry.system_builder(spec)
    else:
        system = build_quorum_system(spec.quorum)

    cluster = Cluster(spec.cluster.num_nodes)
    code = MDSCode(spec.code.n, spec.code.k, construction=spec.code.construction)
    layout = _layout_for(spec, stripe_index)
    engine = entry.builder(spec, cluster, code, layout)
    repair = RepairService(engine) if entry.supports_repair else None
    (rng,) = spawn_rngs(make_rng(spec.seed), 1)
    return BuiltSystem(
        spec=spec,
        cluster=cluster,
        code=code,
        layout=layout,
        engine=engine,
        system=system,
        quorum=quorum,
        repair=repair,
        rng=rng,
    )
