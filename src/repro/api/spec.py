"""Declarative system specification: the facade's serializable config tree.

A :class:`SystemSpec` describes one complete experiment — code parameters,
quorum geometry, cluster and failure model, placement, workload, scenario
and a single top-level ``seed`` — as a tree of frozen dataclasses. Every
node validates eagerly on construction, round-trips losslessly through
``to_dict()/from_dict()`` (and therefore JSON), and is hashable, so specs
can key caches and parameter sweeps.

The spec layer is deliberately inert: it never imports the protocol
engines. :mod:`repro.api.registry` maps the declarative names onto the
concrete classes and :func:`repro.api.build.build_system` composes them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, is_dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "CodeSpec",
    "QuorumSpec",
    "ClusterSpec",
    "PlacementSpec",
    "WorkloadSpec",
    "LatencySpec",
    "ServiceTimeSpec",
    "ShardingSpec",
    "MetadataSpec",
    "FaultloadSpec",
    "ScenarioSpec",
    "TransportSpec",
    "SystemSpec",
    "execution_options",
]


# --------------------------------------------------------------------- #
# serialization helpers shared by every spec node
# --------------------------------------------------------------------- #


def _jsonable(value):
    """Recursively convert a spec field value to plain JSON types."""
    if is_dataclass(value):
        return {f.name: _jsonable(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return value


def _as_tuple(value, label: str):
    """Coerce a JSON list (or scalar/tuple) back into a tuple, or None."""
    if value is None:
        return None
    if isinstance(value, (list, tuple)):
        return tuple(value)
    raise ConfigurationError(f"{label} must be a list, got {value!r}")


class _SpecBase:
    """Mixin: dict/JSON round-trip for frozen spec dataclasses."""

    #: field name -> nested spec class (overridden by composite nodes)
    _NESTED: dict[str, type] = {}
    #: fields stored as tuples (JSON lists)
    _TUPLES: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-JSON-types dict (tuples become lists, specs become dicts)."""
        return _jsonable(self)

    @classmethod
    def from_dict(cls, data: dict) -> "_SpecBase":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{cls.__name__} expects a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.__name__} keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        kwargs = {}
        for key, value in data.items():
            if key in cls._NESTED and value is not None:
                value = cls._NESTED[key].from_dict(value)
            elif key in cls._TUPLES:
                value = _as_tuple(value, f"{cls.__name__}.{key}")
            elif isinstance(value, list):
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "_SpecBase":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def replace(self, **changes) -> "_SpecBase":
        """A copy with the given fields replaced (re-validates)."""
        return replace(self, **changes)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


# --------------------------------------------------------------------- #
# leaf specs
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CodeSpec(_SpecBase):
    """The (n, k) MDS code over GF(2^8)."""

    n: int = 9
    k: int = 6
    construction: str = "vandermonde"

    def __post_init__(self) -> None:
        _require(self.k >= 1, f"k must be >= 1, got {self.k}")
        _require(self.n >= self.k, f"need n >= k, got n={self.n}, k={self.k}")
        _require(
            self.construction in ("vandermonde", "cauchy"),
            f"unknown construction {self.construction!r}",
        )

    @property
    def group_size(self) -> int:
        """Nbnode = n - k + 1, the consistency-group size (paper eq. 5)."""
        return self.n - self.k + 1


@dataclass(frozen=True)
class QuorumSpec(_SpecBase):
    """Quorum-system geometry, keyed by registry ``kind``.

    ``trapezoid``
        ``a``, ``b``, ``h`` shape plus ``w`` (scalar eq.-16 uniform
        parameter, an explicit per-level tuple, or None for the default).
    ``rowa`` / ``majority``
        ``size`` nodes.
    ``grid``
        ``rows`` x ``cols`` nodes.
    ``tree``
        complete binary tree of ``height``.
    ``voting``
        ``weights`` (or unit weights over ``size``) with ``read_votes`` /
        ``write_votes`` thresholds.
    """

    _TUPLES = ("weights",)

    kind: str = "trapezoid"
    # trapezoid
    a: int | None = None
    b: int | None = None
    h: int | None = None
    w: int | tuple[int, ...] | None = None
    # flat systems
    size: int | None = None
    rows: int | None = None
    cols: int | None = None
    height: int | None = None
    weights: tuple[int, ...] | None = None
    read_votes: int | None = None
    write_votes: int | None = None

    def __post_init__(self) -> None:
        if isinstance(self.w, list):
            object.__setattr__(self, "w", tuple(int(x) for x in self.w))
        if self.weights is not None:
            object.__setattr__(
                self, "weights", tuple(int(x) for x in self.weights)
            )
        checks = {
            "trapezoid": self._check_trapezoid,
            "rowa": self._check_sized,
            "majority": self._check_sized,
            "grid": self._check_grid,
            "tree": self._check_tree,
            "voting": self._check_voting,
        }
        # Kinds beyond the built-ins are allowed here and validated at
        # build time against the registry: the spec layer stays inert so
        # register_quorum() can extend the declarative surface (custom
        # kinds reuse whichever of the fields above they need).
        check = checks.get(self.kind)
        if check is not None:
            check()

    def _check_trapezoid(self) -> None:
        _require(
            self.a is not None and self.b is not None and self.h is not None,
            "trapezoid quorum needs a, b and h",
        )

    def _check_sized(self) -> None:
        _require(
            self.size is not None and self.size >= 1,
            f"{self.kind} quorum needs size >= 1",
        )

    def _check_grid(self) -> None:
        _require(
            self.rows is not None and self.cols is not None,
            "grid quorum needs rows and cols",
        )

    def _check_tree(self) -> None:
        _require(self.height is not None, "tree quorum needs height")

    def _check_voting(self) -> None:
        _require(
            self.weights is not None or self.size is not None,
            "voting quorum needs weights (or size for unit weights)",
        )
        _require(
            self.read_votes is not None and self.write_votes is not None,
            "voting quorum needs read_votes and write_votes",
        )


@dataclass(frozen=True)
class ClusterSpec(_SpecBase):
    """Cluster size and failure model.

    ``bernoulli``
        i.i.d. per-node availability ``p`` (the paper's snapshot model).
    ``exponential``
        alternating-renewal fail/repair trace with means ``mtbf``/``mttr``
        (history-model runs).
    """

    num_nodes: int = 9
    failure: str = "bernoulli"
    p: float = 0.9
    mtbf: float | None = None
    mttr: float | None = None

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1, f"num_nodes must be >= 1, got {self.num_nodes}")
        _require(
            self.failure in ("bernoulli", "exponential"),
            f"unknown failure model {self.failure!r}",
        )
        _require(0.0 <= self.p <= 1.0, f"p must be in [0, 1], got {self.p}")
        if self.failure == "exponential":
            _require(
                self.mtbf is not None and self.mtbf > 0,
                "exponential failure model needs mtbf > 0",
            )
            _require(
                self.mttr is not None and self.mttr > 0,
                "exponential failure model needs mttr > 0",
            )


@dataclass(frozen=True)
class PlacementSpec(_SpecBase):
    """Stripe-to-node placement policy."""

    kind: str = "identity"
    stripes: int = 1

    def __post_init__(self) -> None:
        _require(
            self.kind in ("identity", "rotating"),
            f"unknown placement kind {self.kind!r}",
        )
        _require(self.stripes >= 1, f"stripes must be >= 1, got {self.stripes}")


@dataclass(frozen=True)
class WorkloadSpec(_SpecBase):
    """Operation mix driven through the engine (see repro.sim.workloads)."""

    kind: str = "uniform"
    num_ops: int = 200
    read_fraction: float = 0.5
    block_length: int = 32
    alpha: float = 1.2  # zipf skew
    burst_length: int = 8  # vm_disk bursts
    hot_fraction: float = 0.2  # vm_disk hot set

    def __post_init__(self) -> None:
        _require(
            self.kind in ("uniform", "sequential", "zipf", "vm_disk"),
            f"unknown workload kind {self.kind!r}",
        )
        _require(self.num_ops >= 1, f"num_ops must be >= 1, got {self.num_ops}")
        _require(
            0.0 <= self.read_fraction <= 1.0,
            f"read_fraction must be in [0, 1], got {self.read_fraction}",
        )
        _require(
            self.block_length >= 1,
            f"block_length must be >= 1, got {self.block_length}",
        )
        _require(self.alpha > 0, f"alpha must be > 0, got {self.alpha}")
        _require(
            self.burst_length >= 1,
            f"burst_length must be >= 1, got {self.burst_length}",
        )
        _require(
            0.0 < self.hot_fraction <= 1.0,
            f"hot_fraction must be in (0, 1], got {self.hot_fraction}",
        )


@dataclass(frozen=True)
class LatencySpec(_SpecBase):
    """Message latency model + timeout/retry policy of the event runtime.

    ``kind`` selects the per-message-leg delay distribution (``fixed``:
    ``delay``; ``uniform``: [``low``, ``high``]; ``lognormal``:
    exp(N(``mu``, ``sigma``²)), heavy-tailed; ``two_tier``: per-link
    rack/WAN — ``local`` within a rack of ``rack_size`` consecutive
    nodes, ``remote`` across racks, widened by a fractional ``jitter``).
    ``timeout``/``retries`` form the per-operation
    :class:`~repro.runtime.rounds.RetryPolicy`: a request unanswered
    after ``timeout`` virtual seconds is resent up to ``retries`` times,
    then counts as failed.
    """

    kind: str = "lognormal"
    delay: float = 0.001
    low: float = 0.0005
    high: float = 0.002
    mu: float = -6.5
    sigma: float = 0.5
    local: float = 0.0005
    remote: float = 0.005
    rack_size: int = 3
    jitter: float = 0.0
    timeout: float = 0.05
    retries: int = 0

    def __post_init__(self) -> None:
        _require(
            self.kind in ("fixed", "uniform", "lognormal", "two_tier"),
            f"unknown latency kind {self.kind!r}",
        )
        _require(self.delay >= 0, f"delay must be >= 0, got {self.delay}")
        _require(
            0 <= self.low <= self.high,
            f"need 0 <= low <= high, got low={self.low}, high={self.high}",
        )
        _require(self.sigma >= 0, f"sigma must be >= 0, got {self.sigma}")
        _require(
            0 <= self.local <= self.remote,
            f"need 0 <= local <= remote, got local={self.local}, "
            f"remote={self.remote}",
        )
        _require(self.rack_size >= 1, f"rack_size must be >= 1, got {self.rack_size}")
        _require(
            0.0 <= self.jitter < 1.0,
            f"jitter must be in [0, 1), got {self.jitter}",
        )
        _require(self.timeout > 0, f"timeout must be > 0, got {self.timeout}")
        _require(self.retries >= 0, f"retries must be >= 0, got {self.retries}")


@dataclass(frozen=True)
class ServiceTimeSpec(_SpecBase):
    """Per-node request service time of the event runtime.

    ``none`` (the default) keeps nodes as infinite servers — zero
    service time, the pre-queue event path byte for byte. ``fixed``
    (M/D/1-style) and ``exponential`` (M/M/1-style, ``time`` is the
    mean) attach one FIFO service queue per node: every delivered
    request waits its turn and occupies the node for a sampled service
    time, so concurrent shards genuinely contend and throughput
    saturates at the service capacity.
    """

    kind: str = "none"
    time: float = 0.0005

    def __post_init__(self) -> None:
        _require(
            self.kind in ("none", "fixed", "exponential"),
            f"unknown service-time kind {self.kind!r}",
        )
        if self.kind == "fixed":
            _require(self.time >= 0, f"service time must be >= 0, got {self.time}")
        elif self.kind == "exponential":
            _require(self.time > 0, f"service mean must be > 0, got {self.time}")


@dataclass(frozen=True)
class ShardingSpec(_SpecBase):
    """How many stripe families share the cluster, and the address map.

    ``shards`` per-shard coordinators (each one stripe family of ``k``
    data blocks, placed via the placement policy's stripe rotation) run
    on one shared simulator/cluster; the front-end
    :class:`~repro.runtime.router.ShardRouter` maps the
    ``shards * k`` logical blocks onto them. ``routing`` is
    ``interleave`` (round-robin; with one shard the identity map, pinned
    bit-identical to the unsharded path) or ``hash`` (a fixed
    pseudorandom permutation seeded by ``route_seed`` — configuration,
    not experiment randomness — modelling hash placement of keys onto
    stripe families).
    """

    shards: int = 1
    routing: str = "interleave"
    route_seed: int = 0

    def __post_init__(self) -> None:
        _require(self.shards >= 1, f"shards must be >= 1, got {self.shards}")
        _require(
            self.routing in ("interleave", "hash"),
            f"unknown routing {self.routing!r}",
        )
        _require(
            isinstance(self.route_seed, int),
            f"route_seed must be an int, got {self.route_seed!r}",
        )


@dataclass(frozen=True)
class MetadataSpec(_SpecBase):
    """The separate metadata quorum of the verified (Byzantine) read path.

    ``nodes`` extra fail-stop-but-honest metadata nodes are appended to
    the cluster (ids ``num_nodes .. num_nodes + nodes - 1``); they store
    the per-block (version, digest) records that make payload replies
    verifiable. ``quorum`` names a registry kind
    (:func:`repro.api.registry.register_quorum`-pluggable; ``majority``
    by default, ``rowa`` also works out of the box — kinds needing more
    geometry than a size raise at build time).

    ``f`` is the number of *Byzantine* (lying, not just fail-stop)
    metadata nodes the tier tolerates. ``f > 0`` requires ``nodes >=
    3f + 1``, replaces the registry thresholds with 2f+1 write/read
    counts, and makes reads demand f+1 matching records (see
    :class:`~repro.runtime.verify.MetadataQuorum`). ``signed`` turns on
    writer-keyed record tags (self-verifying records); it defaults to
    ``f > 0`` — Byzantine tolerance without authentication is refused,
    while a trusted tier may opt in to signing alone (rollback-detection
    without the 3f+1 cost is not possible, but forged records still die
    at the tag check).
    """

    nodes: int = 3
    quorum: str = "majority"
    f: int = 0
    signed: bool | None = None

    def __post_init__(self) -> None:
        _require(self.nodes >= 1, f"metadata nodes must be >= 1, got {self.nodes}")
        _require(
            isinstance(self.quorum, str) and len(self.quorum) > 0,
            f"metadata quorum must be a registry kind name, got {self.quorum!r}",
        )
        _require(
            isinstance(self.f, int) and self.f >= 0,
            f"metadata f must be an int >= 0, got {self.f!r}",
        )
        if self.f > 0:
            _require(
                self.nodes >= 3 * self.f + 1,
                f"metadata f = {self.f} needs nodes >= 3f + 1 = "
                f"{3 * self.f + 1}, got {self.nodes}",
            )
            _require(
                self.signed is not False,
                "metadata f > 0 requires signed records (signed=False "
                "cannot tolerate Byzantine metadata nodes)",
            )
        _require(
            self.signed is None or isinstance(self.signed, bool),
            f"metadata signed must be a bool or None, got {self.signed!r}",
        )

    @property
    def effective_signed(self) -> bool:
        """Signing on? Explicit flag wins; otherwise implied by ``f > 0``."""
        return self.signed if self.signed is not None else self.f > 0


@dataclass(frozen=True)
class TransportSpec(_SpecBase):
    """How the ``wallclock`` scenario reaches its live node services.

    ``kind``
        ``inproc`` — asyncio queue pairs inside the driving process
        (zero network latency, full wire-protocol round trip); ``tcp`` —
        one ``asyncio.start_server`` per node on ``host``.
    ``port_base``
        ``0`` asks the OS for ephemeral ports (self-contained runs;
        collision-free in CI); a non-zero base pins node *i* to
        ``port_base + i`` — the layout ``repro serve`` announces and
        ``repro wallclock --connect`` dials.
    ``serialization``
        ``json`` (always available) or ``msgpack`` (only if the package
        is installed — checked at run time, not spec time).
    """

    kind: str = "inproc"
    host: str = "127.0.0.1"
    port_base: int = 0
    serialization: str = "json"

    def __post_init__(self) -> None:
        _require(
            self.kind in ("inproc", "tcp"),
            f"transport kind must be 'inproc' or 'tcp', got {self.kind!r}",
        )
        _require(
            isinstance(self.host, str) and len(self.host) > 0,
            f"host must be a non-empty string, got {self.host!r}",
        )
        _require(
            isinstance(self.port_base, int)
            and (self.port_base == 0 or 1024 <= self.port_base <= 65000),
            f"port_base must be 0 (ephemeral) or in [1024, 65000], "
            f"got {self.port_base!r}",
        )
        _require(
            self.serialization in ("json", "msgpack"),
            f"serialization must be 'json' or 'msgpack', "
            f"got {self.serialization!r}",
        )


def _require_positive_finite(value: float, label: str) -> None:
    _require(
        isinstance(value, (int, float)) and math.isfinite(value) and value > 0,
        f"{label} must be a finite number > 0, got {value!r}",
    )


def _require_unit_interval(value: float, label: str) -> None:
    _require(
        isinstance(value, (int, float))
        and math.isfinite(value)
        and 0.0 <= value <= 1.0,
        f"{label} must be a finite number in [0, 1], got {value!r}",
    )


@dataclass(frozen=True)
class FaultloadSpec(_SpecBase):
    """What goes wrong *while* the latency scenario runs.

    ``none``
        a healthy cluster (pure latency baseline),
    ``churn``
        alternating-renewal fail/repair per node with means
        ``mtbf``/``mttr`` (nodes miss writes while down and come back
        stale — mid-operation, thanks to the event runtime),
    ``partition``
        every ``period`` virtual seconds, ``partition_size`` randomly
        chosen nodes drop off the network for ``duration`` seconds
        (messages to them are silently lost; timeouts resolve them),
    ``byzantine``
        ``round(byzantine_fraction * num_nodes)`` payload nodes turn
        Byzantine for the whole run: each read-type reply they serve is
        corrupted with probability ``corruption_rate`` per
        ``corruption_mode`` (``payload``: garbled bytes, ``stale``:
        decremented versions, ``mixed``: a coin flip between the two).
        Additionally ``metadata_liars`` *metadata* nodes (requires a
        ``metadata`` section with at least that many nodes) lie on their
        record replies with probability ``metadata_rate`` per
        ``metadata_mode`` — ``forge`` (fabricated record, bumped
        version), ``stale_record`` (authentic-rollback replay of the
        record held when armed) or ``equivocate`` (a coin flip between
        the two per reply). With ``metadata_liars = 0`` (default) the
        metadata tier stays honest — the pre-hardening trust model.

    All rates are validated eagerly (negative, NaN and infinite values
    are spec-level errors, not late simulator failures).
    """

    kind: str = "none"
    mtbf: float = 200.0
    mttr: float = 20.0
    partition_size: int = 1
    period: float = 100.0
    duration: float = 20.0
    byzantine_fraction: float = 0.25
    corruption_mode: str = "payload"
    corruption_rate: float = 1.0
    metadata_liars: int = 0
    metadata_mode: str = "forge"
    metadata_rate: float = 1.0

    def __post_init__(self) -> None:
        _require(
            self.kind in ("none", "churn", "partition", "byzantine"),
            f"unknown faultload kind {self.kind!r}",
        )
        _require_positive_finite(self.mtbf, "mtbf")
        _require_positive_finite(self.mttr, "mttr")
        _require(
            self.partition_size >= 1,
            f"partition_size must be >= 1, got {self.partition_size}",
        )
        _require_positive_finite(self.period, "period")
        _require(
            isinstance(self.duration, (int, float))
            and math.isfinite(self.duration)
            and 0 < self.duration <= self.period,
            f"need 0 < duration <= period, got duration={self.duration!r}, "
            f"period={self.period}",
        )
        _require_unit_interval(self.byzantine_fraction, "byzantine_fraction")
        _require(
            self.corruption_mode in ("payload", "stale", "mixed"),
            f"unknown corruption_mode {self.corruption_mode!r}",
        )
        _require_unit_interval(self.corruption_rate, "corruption_rate")
        _require(
            isinstance(self.metadata_liars, int) and self.metadata_liars >= 0,
            f"metadata_liars must be an int >= 0, got {self.metadata_liars!r}",
        )
        _require(
            self.metadata_mode in ("forge", "stale_record", "equivocate"),
            f"unknown metadata_mode {self.metadata_mode!r}",
        )
        _require_unit_interval(self.metadata_rate, "metadata_rate")
        if self.metadata_liars > 0:
            _require(
                self.kind == "byzantine",
                "metadata_liars > 0 requires the 'byzantine' faultload kind, "
                f"got {self.kind!r}",
            )


@dataclass(frozen=True)
class ScenarioSpec(_SpecBase):
    """What the :class:`~repro.api.runner.ScenarioRunner` executes.

    ``smoke``
        run the workload through the engine on a healthy cluster,
    ``availability``
        closed-form / exact / Monte-Carlo sweep over ``ps``,
    ``protocol_mc``
        per-trial execution of the real engine under sampled failures,
    ``trace``
        discrete-event history-model run (needs an exponential cluster),
    ``comparison``
        several registry protocols against one shared failure schedule
        (``num_blocks = 1`` pins every operation to block 0, whose
        consistency group every flat baseline replicates on — the
        paper-faithful same-node-set comparison; the default ``None``
        spreads operations over all k blocks),
    ``sweep``
        the availability sweep repeated across trapezoid ``w_values``,
    ``optimize``
        the occupancy-engine configuration search over every (shape, w)
        for the code's (n, k), one result per entry of ``ps`` (tables are
        shared across the grid; ``max_h`` bounds the shape search),
    ``latency``
        the event-driven runtime: ``clients`` closed-loop clients drive
        the workload concurrently (``think_time`` between an operation's
        completion and the client's next one) under the ``faultload``,
        with messages travelling per the system's ``latency`` spec;
        reports p50/p95/p99 operation latency, availability and
        per-round message counts. Honors the system's ``sharding`` and
        ``service`` sections (per-shard results appear when either is
        configured),
    ``saturation``
        the scaling question: the same sharded closed-loop run repeated
        for every entry of ``client_counts`` (fresh cluster per point,
        same workload tape and faultload), reporting the ops/s-vs-clients
        curve with per-shard + aggregate percentiles, queue-wait
        summaries and the knee of the curve,
    ``wallclock``
        the measured counterpart of ``latency``: the same spec runs once
        through the simulator (prediction) and once against live node
        services (the system's ``transport`` section; in-process by
        default, TCP for real sockets), reporting predicted and measured
        p50/p95/p99 side by side. ``horizon`` acts as a hard wall-clock
        guard in real seconds. Faultloads are simulation-only and
        rejected here.
    """

    _TUPLES = ("ps", "protocols", "w_values", "client_counts")
    _NESTED = {"faultload": FaultloadSpec}

    kind: str = "smoke"
    ps: tuple[float, ...] = (0.5, 0.7, 0.9)
    trials: int = 1000
    steps: int = 200
    max_down: int = 2
    horizon: float = 200.0
    op_rate: float = 1.0
    repair_interval: float | None = None
    protocols: tuple[str, ...] | None = None
    w_values: tuple[int, ...] | None = None
    num_blocks: int | None = None
    max_h: int = 3
    clients: int = 4
    think_time: float = 0.0
    client_counts: tuple[int, ...] | None = None
    faultload: FaultloadSpec | None = None

    def __post_init__(self) -> None:
        kinds = (
            "smoke",
            "availability",
            "protocol_mc",
            "trace",
            "comparison",
            "sweep",
            "optimize",
            "latency",
            "saturation",
            "wallclock",
        )
        _require(
            self.kind in kinds,
            f"unknown scenario kind {self.kind!r} (expected one of {kinds})",
        )
        ps = tuple(float(p) for p in self.ps)
        _require(len(ps) >= 1, "ps must contain at least one availability value")
        _require(
            all(0.0 <= p <= 1.0 for p in ps),
            f"every p must be in [0, 1], got {ps}",
        )
        object.__setattr__(self, "ps", ps)
        _require(self.trials >= 0, f"trials must be >= 0, got {self.trials}")
        _require(self.steps >= 1, f"steps must be >= 1, got {self.steps}")
        _require(self.max_down >= 0, f"max_down must be >= 0, got {self.max_down}")
        _require(self.horizon > 0, f"horizon must be > 0, got {self.horizon}")
        _require(self.op_rate > 0, f"op_rate must be > 0, got {self.op_rate}")
        if self.repair_interval is not None:
            _require(
                self.repair_interval > 0,
                f"repair_interval must be > 0, got {self.repair_interval}",
            )
        if self.protocols is not None:
            protocols = tuple(str(p) for p in self.protocols)
            _require(len(protocols) >= 1, "protocols must not be empty")
            object.__setattr__(self, "protocols", protocols)
        if self.w_values is not None:
            w_values = tuple(int(w) for w in self.w_values)
            _require(len(w_values) >= 1, "w_values must not be empty")
            object.__setattr__(self, "w_values", w_values)
        if self.num_blocks is not None:
            _require(
                self.num_blocks >= 1,
                f"num_blocks must be >= 1, got {self.num_blocks}",
            )
        _require(self.max_h >= 0, f"max_h must be >= 0, got {self.max_h}")
        _require(self.clients >= 1, f"clients must be >= 1, got {self.clients}")
        _require(
            self.think_time >= 0,
            f"think_time must be >= 0, got {self.think_time}",
        )
        if self.client_counts is not None:
            counts = tuple(int(c) for c in self.client_counts)
            _require(len(counts) >= 1, "client_counts must not be empty")
            _require(
                all(c >= 1 for c in counts),
                f"every client count must be >= 1, got {counts}",
            )
            object.__setattr__(self, "client_counts", counts)
        if self.kind == "optimize":
            _require(
                all(0.0 < p < 1.0 for p in self.ps),
                f"optimize needs every p strictly inside (0, 1), got {self.ps}",
            )
        if self.kind == "wallclock":
            _require(
                self.faultload is None or self.faultload.kind == "none",
                "wallclock scenarios cannot run a faultload "
                "(faults are simulation-only)",
            )


# --------------------------------------------------------------------- #
# the top-level spec
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SystemSpec(_SpecBase):
    """One complete, reproducible experiment configuration.

    ``protocol`` names an entry of the protocol registry
    (:func:`repro.api.registry.protocol_names`); ``seed`` is the single
    source of randomness — every schedule, workload, payload and
    Monte-Carlo stream is derived from it, so an identical spec reproduces
    identical results end to end.
    """

    _NESTED = {
        "code": CodeSpec,
        "quorum": QuorumSpec,
        "cluster": ClusterSpec,
        "placement": PlacementSpec,
        "workload": WorkloadSpec,
        "latency": LatencySpec,
        "service": ServiceTimeSpec,
        "sharding": ShardingSpec,
        "metadata": MetadataSpec,
        "scenario": ScenarioSpec,
        "transport": TransportSpec,
    }

    protocol: str = "trap-erc"
    code: CodeSpec = field(default_factory=CodeSpec)
    quorum: QuorumSpec | None = None
    cluster: ClusterSpec | None = None
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    latency: LatencySpec | None = None
    service: ServiceTimeSpec | None = None
    sharding: ShardingSpec | None = None
    metadata: MetadataSpec | None = None
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    transport: TransportSpec | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.quorum is None:
            # Default geometry: the flat single-level trapezoid over the
            # consistency group — always valid for any (n, k).
            object.__setattr__(
                self,
                "quorum",
                QuorumSpec(kind="trapezoid", a=0, b=self.code.group_size, h=0),
            )
        if self.cluster is None:
            object.__setattr__(self, "cluster", ClusterSpec(num_nodes=self.code.n))
        _require(
            self.cluster.num_nodes >= self.code.n,
            f"cluster of {self.cluster.num_nodes} nodes cannot host "
            f"n={self.code.n} blocks",
        )
        _require(isinstance(self.seed, int), f"seed must be an int, got {self.seed!r}")

    @classmethod
    def from_dict(cls, data: dict) -> "SystemSpec":
        """Round-trip inverse of :meth:`to_dict`, tolerant of an advisory
        ``execution`` block.

        ``execution`` carries host-side options — currently only
        ``jobs``, the process-pool width — that change how a run
        executes, never what it computes. It is validated and then
        *dropped*: it is not a spec field, ``to_dict`` never emits it,
        and two configs differing only in ``execution`` are the same
        spec (same hash, same results). Use
        :func:`execution_options` to read it from raw config JSON.
        """
        if isinstance(data, dict) and "execution" in data:
            data = dict(data)
            execution_options(data.pop("execution"))
        return super().from_dict(data)

    @classmethod
    def trapezoid(
        cls,
        n: int,
        k: int,
        a: int,
        b: int,
        h: int,
        w: int | tuple[int, ...] | None = None,
        *,
        protocol: str = "trap-erc",
        **kwargs,
    ) -> "SystemSpec":
        """Convenience constructor for the paper's setting."""
        return cls(
            protocol=protocol,
            code=CodeSpec(n=n, k=k),
            quorum=QuorumSpec(kind="trapezoid", a=a, b=b, h=h, w=w),
            **kwargs,
        )


# --------------------------------------------------------------------- #
# execution options (advisory, never part of spec identity)
# --------------------------------------------------------------------- #


def execution_options(block) -> dict:
    """Validate an advisory ``execution`` config block -> ``{"jobs": N}``.

    Execution options describe *how* to run a spec on this host (the
    process-pool width), not *what* to compute, so they live outside
    :class:`SystemSpec`: ``SystemSpec.from_dict`` strips the block and
    ``to_dict`` never emits it — spec hashing, equality and result
    embedding are all jobs-blind. ``None`` (block absent) means
    ``jobs = 0``, the inline serial path.
    """
    if block is None:
        return {"jobs": 0}
    if not isinstance(block, dict):
        raise ConfigurationError(
            f"execution must be a mapping, got {type(block).__name__}"
        )
    unknown = set(block) - {"jobs"}
    if unknown:
        raise ConfigurationError(
            f"unknown execution keys: {sorted(unknown)} (known: ['jobs'])"
        )
    jobs = block.get("jobs", 0)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
        raise ConfigurationError(
            f"execution.jobs must be an int >= 0, got {jobs!r}"
        )
    return {"jobs": jobs}
