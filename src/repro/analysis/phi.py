"""The paper's Φ notation (eq. 7), vectorized over node availability p.

    Φ_z(i, j) = sum_{m=i..j} C(z, m) p^m (1-p)^{z-m}

i.e. the probability that the number of available nodes among z i.i.d.
Bernoulli(p) nodes falls in [i, j]. Computed from the binomial CDF, which
scipy evaluates stably for vector p.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["phi", "at_least", "at_least_table", "exactly"]


def _as_p(p) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if np.any((p < 0.0) | (p > 1.0)):
        raise ConfigurationError("availability p must lie in [0, 1]")
    return p


def phi(z: int, i: int, j: int, p) -> np.ndarray:
    """Φ_z(i, j): P(i <= #available <= j) for z nodes of availability p.

    Follows the paper's convention that an empty index range (j < i) is the
    empty sum, i.e. probability 0. Bounds are clamped to the support
    [0, z], so e.g. Φ_z(0, -1) = 0 and Φ_z(0, z+5) = 1.
    """
    if z < 0:
        raise ConfigurationError(f"z must be >= 0, got {z}")
    p = _as_p(p)
    lo = max(i, 0)
    hi = min(j, z)
    if hi < lo:
        return np.zeros_like(p)
    upper = stats.binom.cdf(hi, z, p)
    lower = stats.binom.cdf(lo - 1, z, p) if lo > 0 else 0.0
    return np.asarray(upper - lower, dtype=np.float64)


def at_least(z: int, i: int, p) -> np.ndarray:
    """Φ_z(i, z): P(#available >= i). The common special case."""
    return phi(z, i, z, p)


def at_least_table(z: int, p) -> np.ndarray:
    """``at_least(z, i, p)`` for every threshold i in 0..z, stacked on axis 0.

    Shared-table form used when one (level, p) pair is probed at many
    thresholds (the optimizer's w-vector families): row i is exactly the
    scalar ``at_least(z, i, p)``, so table lookups reproduce per-call
    results bit for bit.
    """
    if z < 0:
        raise ConfigurationError(f"z must be >= 0, got {z}")
    p = _as_p(p)
    return np.stack([at_least(z, i, p) for i in range(z + 1)])


def exactly(z: int, m: int, p) -> np.ndarray:
    """P(#available == m) = C(z, m) p^m (1-p)^(z-m)."""
    if z < 0:
        raise ConfigurationError(f"z must be >= 0, got {z}")
    p = _as_p(p)
    if not 0 <= m <= z:
        return np.zeros_like(p)
    return np.asarray(stats.binom.pmf(m, z, p), dtype=np.float64)
