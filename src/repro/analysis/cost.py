"""Message- and IO-cost models for the protocol operations.

The paper's introduction motivates in-place updates by operation counts
("a (9,6)-MDS will require 8 read and write operations for a single block
update"); this module generalizes that accounting to full message-cost
models for Algorithms 1-2 and the baselines, so that benchmarks can check
the executable engines against analytic expectations.

Conventions (matching :class:`repro.cluster.network.Network`): every RPC
costs 2 messages (request + response); version queries, payload reads,
payload writes and parity deltas are all single RPCs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = [
    "write_messages_erc",
    "read_messages_erc_direct",
    "read_messages_erc_decode",
    "expected_read_check_polls",
    "quorum_size_summary",
]


def write_messages_erc(quorum: TrapezoidQuorum, n: int, k: int) -> dict[str, int]:
    """Message budget of Algorithm 1 on a healthy cluster.

    The write embeds one read (line 15: version check + direct payload
    read, the best case) and then contacts every node of the trapezoid
    group once (N_i write + n - k parity deltas).
    """
    if quorum.shape.total_nodes != n - k + 1:
        raise ConfigurationError("trapezoid size must equal n - k + 1")
    read = read_messages_erc_direct(quorum)
    group_rpcs = quorum.shape.total_nodes  # one write/delta RPC per node
    return {
        "read_before_write": read["total"],
        "write_rpcs": 2 * group_rpcs,
        "total": read["total"] + 2 * group_rpcs,
    }


def read_messages_erc_direct(quorum: TrapezoidQuorum) -> dict[str, int]:
    """Best-case Algorithm 2: check completes at level 0, N_i fresh.

    r_0 version polls (level 0 contains N_i), one confirmation poll of
    N_i, one payload read.
    """
    r0 = quorum.r(0)
    return {
        "version_polls": 2 * r0,
        "confirmation": 2,
        "payload": 2,
        "total": 2 * r0 + 4,
    }


def read_messages_erc_decode(quorum: TrapezoidQuorum, n: int, k: int) -> dict[str, int]:
    """Worst-case decode budget of Algorithm 2.

    Upper bound: the version check may scan *every* trapezoid node (all
    levels fall through before one completes), then Case 2 reads every
    parity record (n - k RPCs) and every other data record (k - 1 RPCs)
    before solving, plus the N_i confirmation poll. The engine stops
    early when possible, so measured costs are at or below this.
    """
    if quorum.shape.total_nodes != n - k + 1:
        raise ConfigurationError("trapezoid size must equal n - k + 1")
    polls = quorum.shape.total_nodes
    gather = (n - k) + (k - 1)
    return {
        "version_polls": 2 * polls,
        "confirmation": 2,
        "fragment_reads": 2 * gather,
        "total": 2 * polls + 2 + 2 * gather,
    }


def expected_read_check_polls(quorum: TrapezoidQuorum, p) -> np.ndarray:
    """Expected number of version polls of the Algorithm-2 level scan.

    The scan polls level l's s_l nodes (stopping within the level once
    r_l valid answers arrive; we bound per-level cost by s_l) and falls
    through to level l+1 when fewer than r_l answer. Levels are
    independent, so

        E[polls] <= sum_l s_l * prod_{m<l} P(level m fails).

    Returned as that upper bound, vectorized over p.
    """
    p = np.asarray(p, dtype=np.float64)
    from repro.analysis.phi import at_least

    expected = np.zeros_like(p)
    reach = np.ones_like(p)
    for l in quorum.shape.levels:
        s_l = quorum.shape.level_size(l)
        expected = expected + reach * s_l
        reach = reach * (1.0 - at_least(s_l, quorum.r(l), p))
    return expected


def quorum_size_summary(quorum: TrapezoidQuorum) -> dict[str, int]:
    """|WQ| (eq. 6), cheapest |RQ|, and the node-group size."""
    return {
        "write_quorum_size": quorum.min_write_size,
        "min_read_quorum_size": quorum.min_read_size,
        "group_size": quorum.shape.total_nodes,
    }
