"""Level-occupancy tables: exact availability without 2^m enumeration.

Every count-structured quorum predicate (trapezoid levels, majority,
ROWA, unit-weight voting — anything exposing
:meth:`~repro.quorum.base.QuorumSystem.as_level_thresholds`) depends on an
alive-subset only through its per-group alive counts ``(c_0, ..., c_h)``.
Under the snapshot model the groups are independent, so the joint count
distribution factors into binomials, and the number of alive-subsets
realizing a given count vector is the product of binomial coefficients

    #subsets with counts (c_0..c_h) = prod_g C(s_g, c_g).

This module materializes that joint grid — ``prod(s_g + 1)`` cells
instead of ``2^(sum s_g)`` subsets — and evaluates predicates as
elementwise threshold comparisons over it. The outputs are the *same
integer subset-count arrays* that :func:`repro.analysis.exact.subset_counts`
produces by enumeration, so downstream probability folds are bit-identical
to the reference path; the enumeration stays in the tree as the
property-tested ground truth (``tests/analysis/test_occupancy.py``) and as
the only path for membership-structured quorums (grid, tree).

For TRAP-ERC the level-0 axis is additionally split on whether position 0
(the data node N_i) is alive: the grid then ranges over the ``s_0 - 1``
remaining level-0 nodes and the two branches (direct read / decode) reuse
one set of cell multiplicities with shifted level-0 counts.

Grids and per-threshold count tables are cached per shape
(:func:`functools.lru_cache`), so an availability sweep or an optimizer
pass over many ``p`` values pays for each table exactly once; the family
variants evaluate a whole ``w``-vector family against one grid in a
single vectorized pass.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb

import numpy as np

from repro.errors import ConfigurationError
from repro.quorum.base import CountPredicate

__all__ = [
    "predicate_counts",
    "predicate_counts_family",
    "erc_level_counts",
    "erc_level_counts_family",
    "occupancy_cache_clear",
    "occupancy_cache_info",
]

#: Hard cap on joint-grid cells (not nodes): a flat 1000-node majority is
#: only a 1001-cell grid, while 2^24 subsets already exceed the
#: enumeration budget. Shapes with many tall levels are the only way to
#: blow this. (Node totals are separately bounded by the multiplicity
#: representation: ~1029 nodes, where C(s, s/2) leaves float64 range.)
_MAX_TABLE_CELLS = 1 << 22

#: Largest node total whose subset counts stay exact in int64: the cell
#: multiplicities sum to 2^total, and every single multiplicity is bounded
#: by C(total, total//2) < 2^63 up to 62 nodes. Beyond that the tables
#: switch to float64 (the enumeration reference cannot reach there anyway).
_MAX_INT64_NODES = 62


@lru_cache(maxsize=256)
def _choice_grid(
    choice_sizes: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The joint occupancy grid over ``prod(s + 1)`` count vectors.

    Returns ``(counts, totals, mult)`` — all read-only, flattened over
    cells: ``counts[cell, g]`` is group g's alive count, ``totals[cell]``
    the cell's total alive count, and ``mult[cell]`` the number of
    alive-subsets realizing the cell's count vector.
    """
    cells = 1
    for s in choice_sizes:
        if s < 0:
            raise ConfigurationError(f"group sizes must be >= 0, got {choice_sizes}")
        cells *= s + 1
    if cells > _MAX_TABLE_CELLS:
        raise ConfigurationError(
            f"occupancy grid of {cells} cells exceeds the table limit "
            f"{_MAX_TABLE_CELLS} (sizes {choice_sizes})"
        )
    total_nodes = sum(choice_sizes)
    dtype = np.int64 if total_nodes <= _MAX_INT64_NODES else np.float64
    axes = np.meshgrid(
        *(np.arange(s + 1, dtype=np.int64) for s in choice_sizes), indexing="ij"
    )
    counts = np.stack([axis.ravel() for axis in axes], axis=1)
    totals = counts.sum(axis=1)
    mult = np.ones(cells, dtype=dtype)
    for g, s in enumerate(choice_sizes):
        try:
            factors = np.array([comb(s, c) for c in range(s + 1)], dtype=dtype)
        except OverflowError:
            # C(s, s/2) beyond float64 range (~1029 nodes in one group):
            # the counts are unrepresentable and the probability terms
            # would overflow anyway — Monte Carlo is the tool up there.
            raise ConfigurationError(
                f"a group of {s} nodes overflows the float64 occupancy "
                "multiplicities; use the Monte-Carlo estimators instead"
            ) from None
        mult = mult * factors[counts[:, g]]
    for arr in (counts, totals, mult):
        arr.setflags(write=False)
    return counts, totals, mult


def _fold_by_total(
    mask: np.ndarray, totals: np.ndarray, mult: np.ndarray, num_nodes: int
) -> np.ndarray:
    """counts[c] = sum of multiplicities of masked cells with total c."""
    if mult.dtype == np.int64:
        out = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(out, totals[mask], mult[mask])
        return out
    return np.bincount(
        totals[mask], weights=mult[mask], minlength=num_nodes + 1
    )


def _fold_by_total_family(
    masks: np.ndarray, totals: np.ndarray, mult: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Family fold: one matmul collapses every mask row at once."""
    cells = totals.shape[0]
    onehot = np.zeros((cells, num_nodes + 1), dtype=mult.dtype)
    onehot[np.arange(cells), totals] = mult
    return masks.astype(mult.dtype) @ onehot


@lru_cache(maxsize=4096)
def predicate_counts(predicate: CountPredicate) -> np.ndarray:
    """Exact ``subset_counts`` of a count-structured predicate.

    ``counts[c]`` is the number of alive-subsets of size c satisfying the
    predicate — integer-identical to enumerating all ``2^total`` subsets,
    in O(prod(s_g + 1)) instead.
    """
    counts, totals, mult = _choice_grid(predicate.sizes)
    hits = counts >= np.asarray(predicate.thresholds, dtype=np.int64)
    mask = hits.all(axis=1) if predicate.mode == "all" else hits.any(axis=1)
    out = _fold_by_total(mask, totals, mult, predicate.total)
    out.setflags(write=False)
    return out


def predicate_counts_family(
    sizes: tuple[int, ...],
    thresholds_family,
    mode: str,
) -> np.ndarray:
    """``predicate_counts`` for a family of threshold vectors at once.

    ``thresholds_family`` is a (W, groups) array-like; returns a
    (W, total + 1) matrix whose row i equals
    ``predicate_counts(CountPredicate(sizes, thresholds_family[i], mode))``.
    One grid pass serves the whole family — this is what lets the
    optimizer score every candidate ``w`` vector of a shape together.
    """
    if mode not in ("all", "any"):
        raise ConfigurationError(f"mode must be 'all' or 'any', got {mode!r}")
    sizes = tuple(int(s) for s in sizes)
    thresholds = np.atleast_2d(np.asarray(thresholds_family, dtype=np.int64))
    if thresholds.shape[1] != len(sizes):
        raise ConfigurationError(
            f"need one threshold per group: {len(sizes)} groups, "
            f"family rows of {thresholds.shape[1]}"
        )
    counts, totals, mult = _choice_grid(sizes)
    hits = counts[None, :, :] >= thresholds[:, None, :]  # (W, cells, groups)
    masks = hits.all(axis=2) if mode == "all" else hits.any(axis=2)
    return _fold_by_total_family(masks, totals, mult, sum(sizes))


def _erc_split_masks(
    counts: np.ndarray, thresholds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Check-quorum masks of the two N_i branches over the split grid.

    The grid's level-0 axis counts only the ``s_0 - 1`` non-N_i nodes;
    with N_i alive the observed level-0 count is one higher, so the
    direct-branch threshold on that axis drops by one.
    """
    thr_direct = thresholds.copy()
    thr_direct[..., 0] -= 1
    hits_direct = counts >= thr_direct[..., None, :]
    hits_decode = counts >= thresholds[..., None, :]
    return hits_direct.any(axis=-1), hits_decode.any(axis=-1)


@lru_cache(maxsize=4096)
def erc_level_counts(
    sizes: tuple[int, ...], read_thresholds: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """The TRAP-ERC split subset counts, from the occupancy grid.

    Returns ``(counts_direct, counts_decode)``: check-quorum-passing
    pattern counts by total alive trapezoid nodes, split on position 0
    (N_i) alive/dead — integer-identical to the enumeration reference
    :func:`repro.analysis.exact.erc_subset_counts`.
    """
    sizes = tuple(int(s) for s in sizes)
    thresholds = np.asarray(read_thresholds, dtype=np.int64)
    if thresholds.shape[0] != len(sizes):
        raise ConfigurationError(
            f"need one threshold per level: {len(sizes)} levels, "
            f"{thresholds.shape[0]} thresholds"
        )
    nb = sum(sizes)
    counts, totals, mult = _choice_grid((sizes[0] - 1,) + sizes[1:])
    mask_direct, mask_decode = _erc_split_masks(counts, thresholds)
    # Direct branch: N_i itself is alive, so each pattern is one node bigger.
    counts_direct = _fold_by_total(mask_direct, totals + 1, mult, nb)
    counts_decode = _fold_by_total(mask_decode, totals, mult, nb)
    counts_direct.setflags(write=False)
    counts_decode.setflags(write=False)
    return counts_direct, counts_decode


def erc_level_counts_family(
    sizes: tuple[int, ...], thresholds_family
) -> tuple[np.ndarray, np.ndarray]:
    """``erc_level_counts`` for a family of read-threshold vectors.

    Returns ``(direct, decode)`` matrices of shape (W, Nbnode + 1); row i
    matches ``erc_level_counts(sizes, tuple(thresholds_family[i]))``.
    """
    sizes = tuple(int(s) for s in sizes)
    thresholds = np.atleast_2d(np.asarray(thresholds_family, dtype=np.int64))
    if thresholds.shape[1] != len(sizes):
        raise ConfigurationError(
            f"need one threshold per level: {len(sizes)} levels, "
            f"family rows of {thresholds.shape[1]}"
        )
    nb = sum(sizes)
    counts, totals, mult = _choice_grid((sizes[0] - 1,) + sizes[1:])
    masks_direct, masks_decode = _erc_split_masks(counts, thresholds)
    direct = _fold_by_total_family(masks_direct, totals + 1, mult, nb)
    decode = _fold_by_total_family(masks_decode, totals, mult, nb)
    return direct, decode


def occupancy_cache_clear() -> None:
    """Drop every cached grid and count table (used by the perf harness
    to time cold-path engine runs)."""
    _choice_grid.cache_clear()
    predicate_counts.cache_clear()
    erc_level_counts.cache_clear()


def occupancy_cache_info() -> dict:
    """Hit/miss counters of the per-shape caches."""
    return {
        "grids": _choice_grid.cache_info()._asdict(),
        "predicate_counts": predicate_counts.cache_info()._asdict(),
        "erc_level_counts": erc_level_counts.cache_info()._asdict(),
    }
