"""Exact snapshot-model availability by enumeration (ground truth).

The paper's closed forms assume the *snapshot model*: every node is
independently alive with probability p and every alive node holds the
latest version. Under that model the availability of any protocol is a
polynomial in p that can be computed exactly by enumerating alive-subsets.

This module provides that ground truth:

* :func:`exact_availability` — any :class:`QuorumSystem` predicate,
* :func:`exact_read_erc` — the full Algorithm-2 read predicate of TRAP-ERC,
  including the two effects the paper's eq. (13) simplifies away (the
  version-check requirement inside P2 and the overlap between check and
  decode node sets).

Enumeration is over the n - k + 1 trapezoid nodes only: the k - 1 data
nodes outside the trapezoid influence reads solely through their alive
*count*, which is binomial and independent, so they are folded in
analytically. That keeps the cost at 2^(n-k+1) predicate evaluations even
for large k.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.analysis.availability import validate_erc_geometry
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = [
    "subset_counts",
    "counts_to_probability",
    "exact_availability",
    "exact_read_erc",
]

_MAX_ENUM_NODES = 24


def subset_counts(num_nodes: int, predicate) -> np.ndarray:
    """counts[c] = number of alive-subsets of size c satisfying ``predicate``.

    ``predicate`` receives a frozenset of alive positions.
    """
    if not 0 <= num_nodes <= _MAX_ENUM_NODES:
        raise ConfigurationError(
            f"enumeration supports up to {_MAX_ENUM_NODES} nodes, got {num_nodes}"
        )
    counts = np.zeros(num_nodes + 1, dtype=np.int64)
    for mask in range(1 << num_nodes):
        alive = frozenset(i for i in range(num_nodes) if mask >> i & 1)
        if predicate(alive):
            counts[len(alive)] += 1
    return counts


def counts_to_probability(counts: np.ndarray, num_nodes: int, p) -> np.ndarray:
    """sum_c counts[c] p^c (1-p)^(num_nodes-c), vectorized over p."""
    p = np.asarray(p, dtype=np.float64)
    out = np.zeros_like(p)
    for c, cnt in enumerate(counts):
        if cnt:
            out = out + cnt * p**c * (1.0 - p) ** (num_nodes - c)
    return out


def exact_availability(system: QuorumSystem, p, kind: str = "write") -> np.ndarray:
    """Exact availability of a quorum predicate under the snapshot model."""
    if kind == "write":
        predicate = system.is_write_quorum
    elif kind == "read":
        predicate = system.is_read_quorum
    else:
        raise ConfigurationError(f"kind must be 'read' or 'write', got {kind!r}")
    counts = subset_counts(system.size, predicate)
    return counts_to_probability(counts, system.size, p)


def exact_read_erc(quorum: TrapezoidQuorum, n: int, k: int, p) -> np.ndarray:
    """Exact Algorithm-2 read availability of TRAP-ERC (snapshot model).

    The read of data block b_i succeeds iff

    1. some trapezoid level l has at least r_l alive members
       (the version check of Algorithm 2 lines 11-30), AND
    2. either N_i is alive (direct read, Case 1), or at least k nodes among
       the other n - 1 are alive (decode, Case 2).

    Trapezoid positions: 0 = N_i (level 0), 1.. = the n - k parity nodes in
    level order. The k - 1 non-trapezoid data nodes enter only via their
    binomial alive count.
    """
    validate_erc_geometry(quorum, n, k)
    p = np.asarray(p, dtype=np.float64)
    shape = quorum.shape
    nb = shape.total_nodes  # n - k + 1
    if nb > _MAX_ENUM_NODES:
        raise ConfigurationError(
            f"trapezoid of {nb} nodes exceeds the enumeration limit {_MAX_ENUM_NODES}"
        )

    level_of = [shape.level_of(pos) for pos in range(nb)]
    r = [quorum.r(l) for l in shape.levels]

    # counts_direct[c]   : check-passing patterns with N_i alive, |T| = c
    # counts_decode[c]   : check-passing patterns with N_i dead,  |T| = c
    #                      (then T contains only parity nodes)
    counts_direct = np.zeros(nb + 1, dtype=np.int64)
    counts_decode = np.zeros(nb + 1, dtype=np.int64)
    for mask in range(1 << nb):
        level_counts = [0] * (shape.h + 1)
        size = 0
        for pos in range(nb):
            if mask >> pos & 1:
                level_counts[level_of[pos]] += 1
                size += 1
        if not any(c >= r[l] for l, c in enumerate(level_counts)):
            continue
        if mask & 1:  # position 0 = N_i
            counts_direct[size] += 1
        else:
            counts_decode[size] += 1

    out = counts_to_probability(counts_direct, nb, p)
    # Decode branch: alive parities t must be topped up to k by the other
    # k - 1 data nodes: P(Bin(k-1, p) >= k - t).
    for t, cnt in enumerate(counts_decode):
        if not cnt:
            continue
        if t >= k:
            top_up = np.ones_like(p)
        else:
            top_up = stats.binom.sf(k - t - 1, k - 1, p)
        out = out + cnt * p**t * (1.0 - p) ** (nb - t) * top_up
    return out
