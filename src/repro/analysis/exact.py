"""Exact snapshot-model availability (ground truth + occupancy fast path).

The paper's closed forms assume the *snapshot model*: every node is
independently alive with probability p and every alive node holds the
latest version. Under that model the availability of any protocol is a
polynomial in p whose coefficients are *subset counts* — the number of
alive-subsets of each size satisfying the protocol predicate.

Two ways to obtain those counts live here:

* :func:`subset_counts` / :func:`erc_subset_counts` — literal enumeration
  of all ``2^m`` alive-subsets. This is the property-tested reference
  (the same role :func:`repro.gf.linalg.matmul_reference` plays for the
  GF kernels) and the only path for quorums whose predicates depend on
  *which* nodes are alive (grid, tree). Capped at ``_MAX_ENUM_NODES``.
* the level-occupancy engine (:mod:`repro.analysis.occupancy`) — for any
  system exposing :meth:`~repro.quorum.base.QuorumSystem.as_level_thresholds`,
  the identical integer counts come from the joint level-count grid in
  ``O(prod(s_l + 1))``, which lifts the trapezoid node limit far past the
  enumeration budget and makes per-``p`` re-evaluation effectively free
  (counts are p-independent and cached per shape).

Both paths feed the same probability folds, so on inputs the enumeration
can reach the results are bit-identical.

Enumeration/occupancy is over the n - k + 1 trapezoid nodes only: the
k - 1 data nodes outside the trapezoid influence reads solely through
their alive *count*, which is binomial and independent, so they are
folded in analytically.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.analysis.availability import validate_erc_geometry
from repro.analysis.occupancy import erc_level_counts, predicate_counts
from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = [
    "subset_counts",
    "erc_subset_counts",
    "counts_to_probability",
    "exact_availability",
    "exact_read_erc",
]

_MAX_ENUM_NODES = 24


def subset_counts(num_nodes: int, predicate) -> np.ndarray:
    """counts[c] = number of alive-subsets of size c satisfying ``predicate``.

    ``predicate`` receives a frozenset of alive positions. Enumeration
    reference: every subset is materialized, so the cost is 2^num_nodes
    predicate calls.
    """
    if not 0 <= num_nodes <= _MAX_ENUM_NODES:
        raise ConfigurationError(
            f"enumeration supports up to {_MAX_ENUM_NODES} nodes, got {num_nodes}"
        )
    counts = np.zeros(num_nodes + 1, dtype=np.int64)
    for mask in range(1 << num_nodes):
        alive = frozenset(i for i in range(num_nodes) if mask >> i & 1)
        if predicate(alive):
            counts[len(alive)] += 1
    return counts


def erc_subset_counts(quorum: TrapezoidQuorum) -> tuple[np.ndarray, np.ndarray]:
    """Enumeration reference for the TRAP-ERC split subset counts.

    Returns ``(counts_direct, counts_decode)``:

    * ``counts_direct[c]`` — check-passing patterns with N_i alive, |T| = c,
    * ``counts_decode[c]`` — check-passing patterns with N_i dead, |T| = c
      (then T contains only parity nodes).

    Trapezoid positions: 0 = N_i (level 0), 1.. = the n - k parity nodes
    in level order.
    """
    shape = quorum.shape
    nb = shape.total_nodes
    if nb > _MAX_ENUM_NODES:
        raise ConfigurationError(
            f"trapezoid of {nb} nodes exceeds the enumeration limit {_MAX_ENUM_NODES}"
        )
    level_of = [shape.level_of(pos) for pos in range(nb)]
    r = [quorum.r(l) for l in shape.levels]

    counts_direct = np.zeros(nb + 1, dtype=np.int64)
    counts_decode = np.zeros(nb + 1, dtype=np.int64)
    for mask in range(1 << nb):
        level_counts = [0] * (shape.h + 1)
        size = 0
        for pos in range(nb):
            if mask >> pos & 1:
                level_counts[level_of[pos]] += 1
                size += 1
        if not any(c >= r[l] for l, c in enumerate(level_counts)):
            continue
        if mask & 1:  # position 0 = N_i
            counts_direct[size] += 1
        else:
            counts_decode[size] += 1
    return counts_direct, counts_decode


def counts_to_probability(counts: np.ndarray, num_nodes: int, p) -> np.ndarray:
    """sum_c counts[c] p^c (1-p)^(num_nodes-c), vectorized over p."""
    p = np.asarray(p, dtype=np.float64)
    out = np.zeros_like(p)
    for c, cnt in enumerate(counts):
        if cnt:
            out = out + cnt * p**c * (1.0 - p) ** (num_nodes - c)
    return out


def fold_read_erc(
    counts_direct: np.ndarray,
    counts_decode: np.ndarray,
    nb: int,
    k: int,
    p,
) -> np.ndarray:
    """The shared ERC probability fold over split subset counts.

    Direct patterns succeed outright; decode patterns with t alive
    parities must be topped up to k by the other k - 1 data nodes:
    P(Bin(k-1, p) >= k - t).
    """
    p = np.asarray(p, dtype=np.float64)
    out = counts_to_probability(counts_direct, nb, p)
    for t, cnt in enumerate(counts_decode):
        if not cnt:
            continue
        if t >= k:
            top_up = np.ones_like(p)
        else:
            top_up = stats.binom.sf(k - t - 1, k - 1, p)
        out = out + cnt * p**t * (1.0 - p) ** (nb - t) * top_up
    return out


def exact_availability(system: QuorumSystem, p, kind: str = "write") -> np.ndarray:
    """Exact availability of a quorum predicate under the snapshot model.

    Count-structured systems (trapezoid, majority, ROWA, unit-weight
    voting) are evaluated through the occupancy engine with no practical
    size limit; anything else falls back to subset enumeration (capped at
    ``_MAX_ENUM_NODES``).
    """
    if kind == "write":
        predicate = system.is_write_quorum
    elif kind == "read":
        predicate = system.is_read_quorum
    else:
        raise ConfigurationError(f"kind must be 'read' or 'write', got {kind!r}")
    count_predicate = system.as_level_thresholds(kind)
    if count_predicate is not None:
        counts = predicate_counts(count_predicate)
    else:
        counts = subset_counts(system.size, predicate)
    return counts_to_probability(counts, system.size, p)


def exact_read_erc(
    quorum: TrapezoidQuorum, n: int, k: int, p, *, method: str = "occupancy"
) -> np.ndarray:
    """Exact Algorithm-2 read availability of TRAP-ERC (snapshot model).

    The read of data block b_i succeeds iff

    1. some trapezoid level l has at least r_l alive members
       (the version check of Algorithm 2 lines 11-30), AND
    2. either N_i is alive (direct read, Case 1), or at least k nodes among
       the other n - 1 are alive (decode, Case 2).

    ``method="occupancy"`` (default) reads the split counts off the cached
    level-occupancy grid; ``method="enumeration"`` runs the 2^Nbnode
    reference. The two are integer-identical in the counts and therefore
    bit-identical in the result wherever the reference can run.
    """
    validate_erc_geometry(quorum, n, k)
    shape = quorum.shape
    if method == "occupancy":
        counts_direct, counts_decode = erc_level_counts(
            shape.level_sizes, quorum.read_thresholds
        )
    elif method == "enumeration":
        counts_direct, counts_decode = erc_subset_counts(quorum)
    else:
        raise ConfigurationError(
            f"method must be 'occupancy' or 'enumeration', got {method!r}"
        )
    return fold_read_erc(counts_direct, counts_decode, shape.total_nodes, k, p)
