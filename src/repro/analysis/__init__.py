"""Closed-form analysis of the trapezoid protocol (DESIGN.md S4).

The paper's section IV, vectorized over node availability p: the Φ
combinator (eq. 7), write availability (eqs. 8-9), read availability for
TRAP-FR (eq. 10) and TRAP-ERC (eq. 13), storage accounting (eqs. 14-15),
plus exact-enumeration ground truth for validating the published formulas.
"""

from repro.analysis.availability import (
    erc_betas_lambdas,
    read_availability_erc,
    read_availability_erc_terms,
    read_availability_fr,
    validate_erc_geometry,
    write_availability,
    write_availability_family,
)
from repro.analysis.exact import (
    counts_to_probability,
    erc_subset_counts,
    exact_availability,
    exact_read_erc,
    fold_read_erc,
    subset_counts,
)
from repro.analysis.occupancy import (
    erc_level_counts,
    erc_level_counts_family,
    occupancy_cache_clear,
    occupancy_cache_info,
    predicate_counts,
    predicate_counts_family,
)
from repro.analysis.cost import (
    expected_read_check_polls,
    quorum_size_summary,
    read_messages_erc_decode,
    read_messages_erc_direct,
    write_messages_erc,
)
from repro.analysis.optimizer import (
    ConfigPoint,
    OptimizationResult,
    optimize_config,
    optimize_config_sweep,
)
from repro.analysis.phi import at_least, at_least_table, exactly, phi
from repro.analysis.recovery import (
    node_repair_bill,
    repair_amplification,
    repair_traffic_erc,
    repair_traffic_fr,
)
from repro.analysis.storage import (
    storage_erc,
    storage_fr,
    storage_saving,
    storage_series,
    stripe_storage_erc,
    stripe_storage_fr,
)

__all__ = [
    "phi",
    "at_least",
    "at_least_table",
    "exactly",
    "write_messages_erc",
    "read_messages_erc_direct",
    "read_messages_erc_decode",
    "expected_read_check_polls",
    "quorum_size_summary",
    "ConfigPoint",
    "OptimizationResult",
    "optimize_config",
    "optimize_config_sweep",
    "repair_traffic_erc",
    "repair_traffic_fr",
    "repair_amplification",
    "node_repair_bill",
    "write_availability",
    "write_availability_family",
    "read_availability_fr",
    "read_availability_erc",
    "read_availability_erc_terms",
    "erc_betas_lambdas",
    "validate_erc_geometry",
    "exact_availability",
    "exact_read_erc",
    "fold_read_erc",
    "subset_counts",
    "erc_subset_counts",
    "counts_to_probability",
    "predicate_counts",
    "predicate_counts_family",
    "erc_level_counts",
    "erc_level_counts_family",
    "occupancy_cache_clear",
    "occupancy_cache_info",
    "storage_fr",
    "storage_erc",
    "storage_saving",
    "storage_series",
    "stripe_storage_fr",
    "stripe_storage_erc",
]
