"""Configuration optimizer: pick (shape, w) for a deployment target.

The protocol leaves three knobs free — the trapezoid shape (a, b, h) and
the write-quorum vector — and the paper's figures show they matter. Given
(n, k) and an expected node availability p, this module searches the
whole configuration space and returns the frontier:

* ``best_for_writes``   — argmax write availability (eq. 9),
* ``best_for_reads``    — argmax exact Algorithm-2 read availability,
* ``best_balanced``     — argmax of min(read, write),
* the full Pareto front of (write, read) pairs.

Exact read availability (not eq. 13) is used so the optimizer is not
misled by the approximation's overshoot at high redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.analysis.availability import write_availability
from repro.analysis.exact import exact_read_erc
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum, TrapezoidShape, shapes_for_nbnode

__all__ = ["ConfigPoint", "OptimizationResult", "optimize_config"]


@dataclass(frozen=True)
class ConfigPoint:
    """One evaluated configuration."""

    shape: TrapezoidShape
    w: tuple[int, ...]
    write: float
    read: float

    @property
    def balanced(self) -> float:
        return min(self.write, self.read)


@dataclass(frozen=True)
class OptimizationResult:
    """Winners plus the Pareto front over all evaluated configurations."""

    best_for_writes: ConfigPoint
    best_for_reads: ConfigPoint
    best_balanced: ConfigPoint
    pareto: tuple[ConfigPoint, ...]
    evaluated: int


def _w_vectors(shape: TrapezoidShape, max_vectors: int) -> list[tuple[int, ...]]:
    """Candidate write-quorum vectors: the eq.-16 uniform family plus the
    full per-level product when small enough."""
    w0 = shape.b // 2 + 1
    if shape.h == 0:
        return [(w0,)]
    uniform = [
        (w0,) + (w,) * shape.h for w in range(1, shape.level_size(1) + 1)
    ]
    ranges = [range(1, shape.level_size(l) + 1) for l in range(1, shape.h + 1)]
    total = 1
    for r in ranges:
        total *= len(r)
    if total <= max_vectors:
        full = [(w0,) + combo for combo in product(*ranges)]
        return sorted(set(uniform) | set(full))
    return uniform


def optimize_config(
    n: int,
    k: int,
    p: float,
    *,
    max_h: int = 3,
    max_vectors: int = 512,
) -> OptimizationResult:
    """Search every (shape, w) for the (n, k) group at availability p."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must be in (0, 1), got {p}")
    nbnode = n - k + 1
    if nbnode < 1:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    points: list[ConfigPoint] = []
    for shape in shapes_for_nbnode(nbnode, max_h=max_h):
        for w in _w_vectors(shape, max_vectors):
            quorum = TrapezoidQuorum(shape, w)
            points.append(
                ConfigPoint(
                    shape=shape,
                    w=w,
                    write=float(write_availability(quorum, p)),
                    read=float(exact_read_erc(quorum, n, k, p)),
                )
            )
    if not points:
        raise ConfigurationError(f"no configurations exist for Nbnode={nbnode}")

    pareto: list[ConfigPoint] = []
    for cand in points:
        dominated = any(
            (o.write >= cand.write and o.read >= cand.read)
            and (o.write > cand.write or o.read > cand.read)
            for o in points
        )
        if not dominated:
            pareto.append(cand)
    pareto.sort(key=lambda c: (-c.write, -c.read))

    return OptimizationResult(
        best_for_writes=max(points, key=lambda c: (c.write, c.read)),
        best_for_reads=max(points, key=lambda c: (c.read, c.write)),
        best_balanced=max(points, key=lambda c: (c.balanced, c.write + c.read)),
        pareto=tuple(pareto),
        evaluated=len(points),
    )
