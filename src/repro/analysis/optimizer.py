"""Configuration optimizer: pick (shape, w) for a deployment target.

The protocol leaves three knobs free — the trapezoid shape (a, b, h) and
the write-quorum vector — and the paper's figures show they matter. Given
(n, k) and an expected node availability p, this module searches the
whole configuration space and returns the frontier:

* ``best_for_writes``   — argmax write availability (eq. 9),
* ``best_for_reads``    — argmax exact Algorithm-2 read availability,
* ``best_balanced``     — argmax of min(read, write),
* the full Pareto front of (write, read) pairs.

Exact read availability (not eq. 13) is used so the optimizer is not
misled by the approximation's overshoot at high redundancy.

The search runs on the level-occupancy engine
(:mod:`repro.analysis.occupancy`): per shape, one grid pass scores the
whole ``w``-vector family (the split subset-count tables are independent
of p), and the p-dependent folds reuse those tables across every p value
of a sweep — so :func:`optimize_config_sweep` over a grid of
availabilities costs one table build per shape, not one subset
enumeration per (shape, w, p). Results are bit-identical to the
enumeration-reference point-by-point loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.analysis.availability import write_availability_family
from repro.analysis.exact import fold_read_erc
from repro.analysis.occupancy import erc_level_counts_family
from repro.errors import ConfigurationError
from repro.parallel import ParallelExecutor
from repro.quorum.trapezoid import TrapezoidShape, shapes_for_nbnode

__all__ = [
    "ConfigPoint",
    "OptimizationResult",
    "optimize_config",
    "optimize_config_sweep",
]


@dataclass(frozen=True)
class ConfigPoint:
    """One evaluated configuration."""

    shape: TrapezoidShape
    w: tuple[int, ...]
    write: float
    read: float

    @property
    def balanced(self) -> float:
        return min(self.write, self.read)


@dataclass(frozen=True)
class OptimizationResult:
    """Winners plus the Pareto front over all evaluated configurations."""

    best_for_writes: ConfigPoint
    best_for_reads: ConfigPoint
    best_balanced: ConfigPoint
    pareto: tuple[ConfigPoint, ...]
    evaluated: int


def _w_vectors(shape: TrapezoidShape, max_vectors: int) -> list[tuple[int, ...]]:
    """Candidate write-quorum vectors: the eq.-16 uniform family plus the
    full per-level product when small enough."""
    w0 = shape.b // 2 + 1
    if shape.h == 0:
        return [(w0,)]
    uniform = [
        (w0,) + (w,) * shape.h for w in range(1, shape.level_size(1) + 1)
    ]
    ranges = [range(1, shape.level_size(l) + 1) for l in range(1, shape.h + 1)]
    total = 1
    for r in ranges:
        total *= len(r)
    if total <= max_vectors:
        full = [(w0,) + combo for combo in product(*ranges)]
        return sorted(set(uniform) | set(full))
    return uniform


def _read_thresholds(shape: TrapezoidShape, w: tuple[int, ...]) -> tuple[int, ...]:
    """r_l = s_l - w_l + 1 without constructing a TrapezoidQuorum."""
    return tuple(shape.level_size(l) - w[l] + 1 for l in shape.levels)


def _collect_result(points: list[ConfigPoint]) -> OptimizationResult:
    """Winners + Pareto front, with the reference tie-breaking order."""
    pareto: list[ConfigPoint] = []
    for cand in points:
        dominated = any(
            (o.write >= cand.write and o.read >= cand.read)
            and (o.write > cand.write or o.read > cand.read)
            for o in points
        )
        if not dominated:
            pareto.append(cand)
    pareto.sort(key=lambda c: (-c.write, -c.read))

    return OptimizationResult(
        best_for_writes=max(points, key=lambda c: (c.write, c.read)),
        best_for_reads=max(points, key=lambda c: (c.read, c.write)),
        best_balanced=max(points, key=lambda c: (c.balanced, c.write + c.read)),
        pareto=tuple(pareto),
        evaluated=len(points),
    )


def _shape_family_task(payload: dict) -> dict:
    """Score one shape's full w-vector family — the optimizer's fan-out unit.

    Purely deterministic (no RNG): tables build in the worker, only
    plain floats come back, so parallel sweeps are byte-identical to
    serial ones by construction.
    """
    shape = TrapezoidShape(*payload["shape"])
    ps = payload["ps"]
    nbnode, k = payload["nbnode"], payload["k"]
    p_grid = np.asarray(ps, dtype=np.float64)
    vectors = _w_vectors(shape, payload["max_vectors"])
    thresholds = [_read_thresholds(shape, w) for w in vectors]
    direct, decode = erc_level_counts_family(shape.level_sizes, thresholds)
    # One Φ-table build per (shape, level): rows are (vector, p) grids.
    writes = write_availability_family(shape, vectors, p_grid)
    return {
        "vectors": [list(w) for w in vectors],
        "write": [
            [float(writes[j][i]) for i in range(len(ps))]
            for j in range(len(vectors))
        ],
        "read": [
            [
                float(fold_read_erc(direct[j], decode[j], nbnode, k, np.float64(p)))
                for p in ps
            ]
            for j in range(len(vectors))
        ],
    }


def optimize_config_sweep(
    n: int,
    k: int,
    ps,
    *,
    max_h: int = 3,
    max_vectors: int = 512,
    jobs: int = 0,
    executor: ParallelExecutor | None = None,
) -> tuple[OptimizationResult, ...]:
    """:func:`optimize_config` across a whole availability grid at once.

    The (shape, w) space is scored in one vectorized pass per shape: the
    p-independent split subset-count tables come from a single
    family-sized occupancy-grid sweep, and only the cheap probability
    folds are repeated per p. Returns one :class:`OptimizationResult` per
    entry of ``ps``, each identical to calling ``optimize_config`` at
    that p alone. ``jobs`` fans the shape families across worker
    processes (``executor`` shares an existing pool); the search is
    deterministic, so any worker count returns identical results.
    """
    ps = [float(p) for p in np.atleast_1d(np.asarray(ps, dtype=np.float64))]
    for p in ps:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"p must be in (0, 1), got {p}")
    nbnode = n - k + 1
    if nbnode < 1:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    shapes = list(shapes_for_nbnode(nbnode, max_h=max_h))
    payloads = [
        {
            "shape": (shape.a, shape.b, shape.h),
            "ps": ps,
            "nbnode": nbnode,
            "k": k,
            "max_vectors": max_vectors,
        }
        for shape in shapes
    ]
    owned = executor is None
    pool = ParallelExecutor(jobs) if owned else executor
    try:
        families = pool.map(_shape_family_task, payloads)
    finally:
        if owned:
            pool.close()
    points: list[list[ConfigPoint]] = [[] for _ in ps]
    for shape, family in zip(shapes, families):
        for j, w in enumerate(family["vectors"]):
            for i in range(len(ps)):
                points[i].append(
                    ConfigPoint(
                        shape=shape,
                        w=tuple(w),
                        write=family["write"][j][i],
                        read=family["read"][j][i],
                    )
                )
    if not points[0]:
        raise ConfigurationError(f"no configurations exist for Nbnode={nbnode}")
    return tuple(_collect_result(pts) for pts in points)


def optimize_config(
    n: int,
    k: int,
    p: float,
    *,
    max_h: int = 3,
    max_vectors: int = 512,
) -> OptimizationResult:
    """Search every (shape, w) for the (n, k) group at availability p."""
    return optimize_config_sweep(
        n, k, (p,), max_h=max_h, max_vectors=max_vectors
    )[0]
