"""Recovery-traffic accounting: the cost of node repair.

The paper's introduction motivates much of the related work (Hitchhiker
[10], XORing Elephants [11], regenerating codes [5]) by the network and
IO cost of reconstructing a failed node's blocks. This module provides
that accounting for the reproduction's conventional-RS substrate, so the
benchmarks can report the recovery bill alongside availability:

* conventional (n, k) MDS repair of one lost block reads k surviving
  blocks and writes 1 — a k-fold read amplification,
* full replication repairs by copying 1 block,
* per-*node* costs scale with the number of stripes whose blocks the
  node held (placement-policy dependent).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "repair_traffic_erc",
    "repair_traffic_fr",
    "node_repair_bill",
    "repair_amplification",
]


def repair_traffic_erc(n: int, k: int, blocksize: float = 1.0) -> dict[str, float]:
    """Traffic to rebuild ONE lost block under conventional RS repair."""
    if k < 1 or n < k:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    return {
        "blocks_read": float(k),
        "blocks_written": 1.0,
        "bytes_moved": (k + 1) * blocksize,
    }


def repair_traffic_fr(blocksize: float = 1.0) -> dict[str, float]:
    """Traffic to rebuild one lost replica under full replication."""
    return {
        "blocks_read": 1.0,
        "blocks_written": 1.0,
        "bytes_moved": 2.0 * blocksize,
    }


def repair_amplification(n: int, k: int) -> float:
    """Read amplification of ERC repair relative to replication: k."""
    if k < 1 or n < k:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    return float(k)


def node_repair_bill(
    placement, num_stripes: int, failed_node: int, blocksize: float = 1.0
) -> dict[str, float]:
    """Total traffic to rebuild every block ``failed_node`` held.

    ``placement`` is a :class:`~repro.storage.placement.PlacementPolicy`;
    the bill covers all ``num_stripes`` stripes, distinguishing data and
    parity roles (both cost a k-wide read under conventional repair).
    """
    if num_stripes < 0:
        raise ConfigurationError("num_stripes must be >= 0")
    blocks_held = 0
    for s in range(num_stripes):
        layout = placement.layout_for(s)
        if failed_node in layout.node_ids:
            blocks_held += 1
    traffic = repair_traffic_erc(placement.n, placement.k, blocksize)
    return {
        "blocks_held": float(blocks_held),
        "blocks_read": blocks_held * traffic["blocks_read"],
        "blocks_written": blocks_held * traffic["blocks_written"],
        "bytes_moved": blocks_held * traffic["bytes_moved"],
    }
