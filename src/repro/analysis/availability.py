"""Closed-form availability of the trapezoid protocol (paper section IV).

Implements, vectorized over node availability p:

* eq. (8)/(9)  — write availability (identical for TRAP-FR and TRAP-ERC),
* eq. (10)    — read availability of TRAP-FR,
* eq. (13)    — read availability of TRAP-ERC, with the paper's β_l / λ_l
  bookkeeping (eqs. 11-12) and its P1 (direct read) + P2 (decode) split.

The paper's eq. 13 embeds two modeling simplifications (see DESIGN.md §3):
its level-0 correction term uses ``β_0 = max(0, r_0 - 2)`` which
overcounts failures when r_0 = 1, and its P2 term ignores both the
version-check requirement and the check/decode node overlap. The exact
snapshot-model availability is available in :mod:`repro.analysis.exact`;
this module reproduces the published formulas faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.phi import at_least, at_least_table, phi
from repro.errors import ConfigurationError
from repro.quorum.trapezoid import TrapezoidQuorum

__all__ = [
    "validate_erc_geometry",
    "write_availability",
    "write_availability_family",
    "read_availability_fr",
    "erc_betas_lambdas",
    "read_availability_erc",
    "read_availability_erc_terms",
]


def validate_erc_geometry(quorum: TrapezoidQuorum, n: int, k: int) -> None:
    """Check the paper's eq. (5): the trapezoid holds n - k + 1 nodes."""
    if k < 1 or n < k:
        raise ConfigurationError(f"invalid (n={n}, k={k})")
    expected = n - k + 1
    if quorum.shape.total_nodes != expected:
        raise ConfigurationError(
            f"trapezoid has {quorum.shape.total_nodes} nodes but (n={n}, "
            f"k={k}) requires Nbnode = n - k + 1 = {expected}"
        )


def write_availability(quorum: TrapezoidQuorum, p) -> np.ndarray:
    """Eq. (8)/(9): P_write = prod_l Φ_{s_l}(w_l, s_l).

    The write path is oblivious to whether blocks are replicas or parity
    deltas, which is why the paper finds identical write availability for
    TRAP-FR and TRAP-ERC.
    """
    p = np.asarray(p, dtype=np.float64)
    out = np.ones_like(p)
    for l in quorum.shape.levels:
        out = out * at_least(quorum.shape.level_size(l), quorum.w[l], p)
    return out


def write_availability_family(shape, vectors, p) -> np.ndarray:
    """Eq. (9) for a whole family of write vectors against shared Φ tables.

    ``vectors`` is a sequence of (h+1)-tuples over ``shape``; returns an
    array with one leading row per vector, each row bit-identical to
    ``write_availability(TrapezoidQuorum(shape, w), p)`` — the per-level
    ``Φ_{s_l}(w_l, s_l)`` factors are computed once per (level, p) and
    multiplied in the same level order as the per-quorum closed form.
    """
    p = np.asarray(p, dtype=np.float64)
    tables = [at_least_table(shape.level_size(l), p) for l in shape.levels]
    rows = []
    for w in vectors:
        if len(w) != shape.h + 1:
            raise ConfigurationError(
                f"w must have h+1 = {shape.h + 1} entries, got {len(w)}"
            )
        for l in shape.levels:
            if not 0 <= w[l] <= shape.level_size(l):
                raise ConfigurationError(
                    f"need 0 <= w_{l} <= s_{l} = {shape.level_size(l)}, "
                    f"got {w[l]}"
                )
        out = np.ones_like(p)
        for l in shape.levels:
            out = out * tables[l][w[l]]
        rows.append(out)
    return np.stack(rows)


def read_availability_fr(quorum: TrapezoidQuorum, p) -> np.ndarray:
    """Eq. (10): P_read = 1 - prod_l (1 - Φ_{s_l}(r_l, s_l)).

    With full replicas, finding r_l responsive nodes at any level yields
    both the latest version number and a readable copy. Levels are
    disjoint, so the product form is exact for the snapshot model.
    """
    p = np.asarray(p, dtype=np.float64)
    miss = np.ones_like(p)
    for l in quorum.shape.levels:
        miss = miss * (1.0 - at_least(quorum.shape.level_size(l), quorum.r(l), p))
    return 1.0 - miss


def erc_betas_lambdas(quorum: TrapezoidQuorum) -> tuple[list[int], list[int]]:
    """The paper's eqs. (11)-(12).

    β_0 = max(0, r_0 - 2), β_l = r_l - 1 (l >= 1);
    λ_0 = s_0 - 1,          λ_l = s_l     (l >= 1).

    Level 0 is special because N_i itself lives there: conditioned on N_i
    being alive, only s_0 - 1 level-0 nodes remain random and one response
    (N_i's own) is already counted.
    """
    betas: list[int] = []
    lambdas: list[int] = []
    for l in quorum.shape.levels:
        r_l = quorum.r(l)
        s_l = quorum.shape.level_size(l)
        if l == 0:
            betas.append(max(0, r_l - 2))
            lambdas.append(s_l - 1)
        else:
            betas.append(r_l - 1)
            lambdas.append(s_l)
    return betas, lambdas


def read_availability_erc_terms(
    quorum: TrapezoidQuorum, n: int, k: int, p
) -> tuple[np.ndarray, np.ndarray]:
    """The P1 (direct read) and P2 (decode) terms of eq. (13), separately.

    P1 = p * (1 - prod_l Φ_{λ_l}(0, β_l))   -- N_i alive, check quorum found
    P2 = (1 - p) * Φ_{n-1}(k, n-1)          -- N_i dead, k of n-1 alive
    """
    validate_erc_geometry(quorum, n, k)
    p = np.asarray(p, dtype=np.float64)
    betas, lambdas = erc_betas_lambdas(quorum)
    fail_all_levels = np.ones_like(p)
    for beta_l, lambda_l in zip(betas, lambdas):
        fail_all_levels = fail_all_levels * phi(lambda_l, 0, beta_l, p)
    p1 = p * (1.0 - fail_all_levels)
    p2 = (1.0 - p) * at_least(n - 1, k, p)
    return p1, p2


def read_availability_erc(quorum: TrapezoidQuorum, n: int, k: int, p) -> np.ndarray:
    """Eq. (13): P_read = P1 + P2 for TRAP-ERC."""
    p1, p2 = read_availability_erc_terms(quorum, n, k, p)
    return p1 + p2
