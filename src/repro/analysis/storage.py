"""Storage-space analysis (paper section IV-C, eqs. 14-15, Figure 5).

For one *data block* b_i kept available via its n - k + 1 node group:

* full replication stores n - k + 1 copies:  D_used = (n - k + 1) * blocksize,
* TRAP-ERC stores b_i plus its share of each parity block. Each of the
  n - k parity blocks is shared by all k data blocks, so the attributable
  cost is blocksize / k per parity:  D_used = (n / k) * blocksize.

Whole-stripe accounting (all k data blocks) is also provided: FR costs
k * (n - k + 1) blocks, ERC costs exactly n blocks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "storage_fr",
    "storage_erc",
    "storage_saving",
    "stripe_storage_fr",
    "stripe_storage_erc",
    "storage_series",
]


def _validate(n: int, k: int) -> None:
    if k < 1 or n < k:
        raise ConfigurationError(f"invalid (n={n}, k={k})")


def storage_fr(n: int, k: int, blocksize: float = 1.0) -> float:
    """Eq. (14): disk used per data block under full replication."""
    _validate(n, k)
    return (n - k + 1) * blocksize


def storage_erc(n: int, k: int, blocksize: float = 1.0) -> float:
    """Eq. (15): disk used per data block under the (n, k) MDS code."""
    _validate(n, k)
    return n / k * blocksize


def storage_saving(n: int, k: int) -> float:
    """Fraction of disk saved by ERC relative to FR: 1 - (n/k)/(n-k+1)."""
    return 1.0 - storage_erc(n, k) / storage_fr(n, k)


def stripe_storage_fr(n: int, k: int, blocksize: float = 1.0) -> float:
    """Disk used for a whole k-block stripe under full replication."""
    _validate(n, k)
    return k * (n - k + 1) * blocksize


def stripe_storage_erc(n: int, k: int, blocksize: float = 1.0) -> float:
    """Disk used for a whole k-block stripe under ERC: n blocks."""
    _validate(n, k)
    return float(n) * blocksize


def storage_series(n: int, ks, blocksize: float = 1.0):
    """Figure 5 data: (k values, ERC cost, FR cost) per data block."""
    ks = [int(k) for k in ks]
    erc = np.array([storage_erc(n, k, blocksize) for k in ks])
    fr = np.array([storage_fr(n, k, blocksize) for k in ks])
    return np.array(ks), erc, fr
