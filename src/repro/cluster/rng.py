"""Deterministic randomness helpers.

Every stochastic component takes an explicit ``numpy.random.Generator``;
these helpers make it easy to derive independent child generators from one
experiment seed so that simulations are reproducible and parallelizable
(independent streams per node / per trial — the standard HPC practice).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``None`` / int seed / Generator into a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """``count`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
