"""The simulated storage cluster: nodes + network + failure control.

:class:`Cluster` is the substrate protocol engines run against. It owns
the :class:`StorageNode` instances and the :class:`Network` fabric, and
exposes failure-injection controls used by tests, Monte-Carlo drivers and
the discrete-event trace runner.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.network import Network
from repro.cluster.node import StorageNode
from repro.errors import ConfigurationError

__all__ = ["Cluster"]


class Cluster:
    """A set of fail-stop storage nodes behind an RPC fabric."""

    def __init__(self, num_nodes: int, network: Network | None = None) -> None:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.nodes = [StorageNode(i) for i in range(num_nodes)]
        self.network = network if network is not None else Network()

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> StorageNode:
        if not 0 <= node_id < len(self.nodes):
            raise ConfigurationError(
                f"node id must be in [0, {len(self.nodes)}), got {node_id}"
            )
        return self.nodes[node_id]

    # -- failure injection ---------------------------------------------- #

    def fail(self, node_id: int) -> None:
        self.node(node_id).fail()

    def recover(self, node_id: int, wipe: bool = False) -> None:
        self.node(node_id).recover(wipe=wipe)

    def fail_many(self, node_ids) -> None:
        for nid in node_ids:
            self.fail(nid)

    def recover_all(self) -> None:
        for node in self.nodes:
            if not node.alive:
                node.recover()
        self.network.heal()

    def apply_alive_vector(self, alive: np.ndarray) -> None:
        """Force the exact up/down pattern (snapshot-model driver)."""
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != (len(self.nodes),):
            raise ConfigurationError(
                f"alive vector must have shape ({len(self.nodes)},), got {alive.shape}"
            )
        for node, up in zip(self.nodes, alive):
            if up and not node.alive:
                node.recover()
            elif not up and node.alive:
                node.fail()

    # -- views ------------------------------------------------------------ #

    @property
    def alive_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    @property
    def failed_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes if not n.alive]

    def rpc(self, node_id: int, method: str, *args, **kwargs):
        """Issue an RPC to a node through the network fabric."""
        return self.network.rpc(self.node(node_id), method, *args, **kwargs)

    def reset_stats(self) -> None:
        self.network.stats.reset()
        for node in self.nodes:
            node.stats.__init__()
