"""Fail-stop storage nodes with versioned block stores.

A :class:`StorageNode` models one storage server of the paper's system:

* it holds *data records* (payload + integer version) and *parity records*
  (payload + per-contribution version vector, the column V[:, j-k] of
  Algorithm 1), keyed by arbitrary hashable keys;
* it is fail-stop (assumption 3 of section IV): when failed, every RPC
  raises :class:`NodeUnavailableError`; it never returns wrong data —
  unless a :class:`ByzantineBehavior` is armed on it, which flips the
  node into corrupting read-type replies (garbled payloads and/or
  understated versions) for robustness experiments;
* parity delta application enforces the Algorithm-1 line-26 guard: the
  delta for contribution i at expected version v is accepted only if the
  stored contribution version equals v (otherwise the node is *stale* for
  that contribution and the write counts as failed on it);
* data writes enforce version monotonicity (a replayed or out-of-date
  write is rejected), which keeps last-writer-wins semantics under
  concurrent coordinators.

Nodes also keep per-operation counters so experiments can account for IO.

Service time
------------

On the instant execution path a node answers an RPC in zero time. The
event-driven runtime can instead attach a FIFO *service queue* to every
node (:class:`~repro.runtime.event.NodeServiceQueue`): each delivered
request then occupies the node for a sampled service time before its
reply is produced, so concurrent coordinators genuinely contend for the
node. The :class:`ServiceTimeModel` hierarchy here is the configurable
distribution of that per-request service time; :class:`QueueStats`
accumulates what the queue measured (waits, service, backlog).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError

__all__ = [
    "DataRecord",
    "ParityRecord",
    "NodeStats",
    "StorageNode",
    "ByzantineBehavior",
    "MetadataByzantineBehavior",
    "ServiceTimeModel",
    "FixedServiceTime",
    "ExponentialServiceTime",
    "QueueStats",
]


class ServiceTimeModel:
    """Base per-request service-time model (virtual seconds)."""

    def sample(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class FixedServiceTime(ServiceTimeModel):
    """Deterministic service time: the M/D/1-style server."""

    time: float = 0.0005

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"service time must be >= 0, got {self.time}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.time


@dataclass(frozen=True)
class ExponentialServiceTime(ServiceTimeModel):
    """Memoryless service time with the given mean: the M/M/1 server."""

    mean: float = 0.0005

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"service mean must be > 0, got {self.mean}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))


@dataclass
class QueueStats:
    """What one node's FIFO service queue measured.

    ``total_wait`` sums the queueing delay (arrival to service start) of
    every started request, ``total_service`` the sampled service times
    (equals the server's busy time), ``max_queue_len`` the worst backlog
    including the request in service.
    """

    arrivals: int = 0
    started: int = 0
    served: int = 0
    total_wait: float = 0.0
    total_service: float = 0.0
    max_queue_len: int = 0

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay per started request (0.0 when idle)."""
        return self.total_wait / self.started if self.started else 0.0

    @property
    def mean_service(self) -> float:
        return self.total_service / self.started if self.started else 0.0

    def utilization(self, duration: float) -> float:
        """Busy fraction of the server over ``duration`` virtual seconds."""
        return self.total_service / duration if duration > 0 else 0.0


@dataclass
class DataRecord:
    """A data block replica: payload plus scalar version."""

    payload: np.ndarray
    version: int


@dataclass
class ParityRecord:
    """A parity block: payload plus contribution-version vector V[:, j-k]."""

    payload: np.ndarray
    versions: np.ndarray  # shape (k,), int64


@dataclass
class NodeStats:
    """IO accounting for one node."""

    reads: int = 0
    writes: int = 0
    deltas: int = 0
    version_queries: int = 0
    stale_rejections: int = 0
    failed_rpcs: int = 0
    corrupted_replies: int = 0

    def total_ops(self) -> int:
        return self.reads + self.writes + self.deltas + self.version_queries


#: RPC methods whose *replies* a Byzantine node may corrupt. Write-type
#: RPCs return None — a Byzantine storage server can drop writes too, but
#: that is already covered by the fail-stop faultloads; the interesting
#: new failure mode is answering reads with garbage.
_READ_METHODS = frozenset(
    {"read_data", "data_version", "read_parity", "parity_versions"}
)


class ByzantineBehavior:
    """Corruption policy armed on one node: lies on read-type replies.

    ``mode``
        ``payload``: XOR every byte of a returned payload with a nonzero
        mask (the value is wrong in every position, version claims stay
        truthful) — the cross-checksum-detectable corruption;
        ``stale``: understate versions by one (payloads intact) — the
        node pretends not to have seen the latest write;
        ``mixed``: an independent coin flip between the two per reply.
    ``rate``
        per-reply probability of corruption; draws come from the
        dedicated ``rng`` stream so arming a node at rate 0 consumes
        nothing from the experiment's other streams.

    The behavior mutates only the *reply* — the node's disk content stays
    correct, so the same node answers honestly once disarmed.
    """

    def __init__(self, mode: str, rate: float, rng: np.random.Generator) -> None:
        if mode not in ("payload", "stale", "mixed"):
            raise ConfigurationError(f"unknown corruption mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"corruption rate must be in [0, 1], got {rate}")
        self.mode = mode
        self.rate = float(rate)
        self.rng = rng
        self.injected = 0

    def _corrupt_payload(self, payload: np.ndarray) -> np.ndarray:
        mask = self.rng.integers(1, 256, size=payload.shape, dtype=np.int64)
        return np.bitwise_xor(payload, mask.astype(payload.dtype))

    def apply(self, node: "StorageNode", method: str, value, args=()):
        """Possibly corrupt one reply; returns the (new) reply value.

        ``args`` (the RPC positional arguments) is accepted for interface
        parity with :class:`MetadataByzantineBehavior` — storage-node
        corruption is key-oblivious, so it goes unused here.
        """
        if method not in _READ_METHODS or self.rate == 0.0:
            return value
        if self.rng.random() >= self.rate:
            return value
        mode = self.mode
        if mode == "mixed":
            mode = "payload" if self.rng.random() < 0.5 else "stale"
        if mode == "payload":
            if method not in ("read_data", "read_parity"):
                return value  # version queries carry no payload to garble
            payload, meta = value
            self.injected += 1
            node.stats.corrupted_replies += 1
            return (self._corrupt_payload(payload), meta)
        # stale: understate versions by one, payloads untouched
        if method == "read_data":
            payload, version = value
            result = (payload, int(version) - 1)
        elif method == "data_version":
            result = max(int(value) - 1, -1)
        elif method == "read_parity":
            payload, versions = value
            result = (payload, np.maximum(versions - 1, 0))
        else:  # parity_versions
            if value is None:
                return value
            result = np.maximum(value - 1, 0)
        self.injected += 1
        node.stats.corrupted_replies += 1
        return result


class MetadataByzantineBehavior:
    """Corruption policy armed on one *metadata* node.

    Metadata records live in ordinary data records (``read_data`` /
    ``data_version`` are the only read RPCs the tier serves), but the
    interesting lies differ from payload-node corruption:

    ``mode``
        ``forge``: fabricate a record — garble every byte of the stored
        digest(+tag) and bump the claimed version by one. Against a
        *signed* tier the writer-keyed tag cannot be regenerated, so
        forgeries die at the accept predicate (``tag_rejections``);
        against an unsigned tier the bumped version wins the max-version
        fold and poisons the read.
        ``stale_record``: replay the *authentic* record snapshotted when
        the node was armed (see :meth:`prime`) — a rollback attack. Tags
        verify (the record is genuine, merely old), so only the f+1
        matching rule of a Byzantine-sized quorum defeats it.
        ``equivocate``: an independent coin flip between the two per
        reply — the node tells different stories to different readers.
    ``rate``
        per-reply probability of lying, drawn from the dedicated ``rng``
        stream (a new appended stream, so arming changes nothing for
        existing seeds).

    Replies for keys first written *after* arming are adopted into the
    snapshot on first sight, so later replays roll back to that first
    version. ``injected`` counts only replies that actually differ from
    the truth.
    """

    def __init__(self, mode: str, rate: float, rng: np.random.Generator) -> None:
        if mode not in ("forge", "stale_record", "equivocate"):
            raise ConfigurationError(f"unknown metadata corruption mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"corruption rate must be in [0, 1], got {rate}")
        self.mode = mode
        self.rate = float(rate)
        self.rng = rng
        self.injected = 0
        self._snapshot: dict[object, DataRecord] = {}

    def prime(self, node: "StorageNode") -> None:
        """Snapshot the node's authentic records as the rollback targets."""
        for key, rec in node._data.items():
            self._snapshot.setdefault(
                key, DataRecord(np.array(rec.payload, copy=True), rec.version)
            )

    def _garble(self, payload: np.ndarray) -> np.ndarray:
        mask = self.rng.integers(1, 256, size=payload.shape, dtype=np.int64)
        return np.bitwise_xor(payload, mask.astype(payload.dtype))

    def apply(self, node: "StorageNode", method: str, value, args=()):
        """Possibly replace one reply with a lie; returns the reply value."""
        if method not in ("read_data", "data_version") or self.rate == 0.0:
            return value
        if self.rng.random() >= self.rate:
            return value
        mode = self.mode
        if mode == "equivocate":
            mode = "forge" if self.rng.random() < 0.5 else "stale_record"
        if mode == "forge":
            if method == "read_data":
                payload, version = value
                result = (self._garble(payload), int(version) + 1)
            else:  # data_version
                result = int(value) + 1
        else:  # stale_record: replay the record from arm time
            key = args[0] if args else None
            if key is None:
                return value
            rec = self._snapshot.get(key)
            if rec is None:
                if method == "read_data":
                    payload, version = value
                    self._snapshot[key] = DataRecord(
                        np.array(payload, copy=True), int(version)
                    )
                return value
            if method == "read_data":
                payload, version = value
                if int(version) == rec.version and np.array_equal(
                    payload, rec.payload
                ):
                    return value
                result = (np.array(rec.payload, copy=True), rec.version)
            else:  # data_version
                if int(value) == rec.version:
                    return value
                result = rec.version
        self.injected += 1
        node.stats.corrupted_replies += 1
        return result


class StorageNode:
    """One fail-stop storage server."""

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.alive = True
        self._data: dict[object, DataRecord] = {}
        self._parity: dict[object, ParityRecord] = {}
        self.stats = NodeStats()
        #: armed corruption policy (storage or metadata flavor), or None
        #: for the honest default
        self.byzantine: ByzantineBehavior | MetadataByzantineBehavior | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.alive else "DOWN"
        return f"StorageNode(id={self.node_id}, {state}, keys={len(self._data) + len(self._parity)})"

    # ------------------------------------------------------------------ #
    # failure model
    # ------------------------------------------------------------------ #

    def fail(self) -> None:
        """Fail-stop: the node stops answering but keeps its disk content."""
        self.alive = False

    def recover(self, wipe: bool = False) -> None:
        """Bring the node back. ``wipe=True`` models a disk replacement
        (all records lost, needs repair); ``wipe=False`` models a reboot
        (records intact but possibly stale)."""
        if wipe:
            self._data.clear()
            self._parity.clear()
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            self.stats.failed_rpcs += 1
            raise NodeUnavailableError(self.node_id)

    def set_byzantine(
        self, behavior: "ByzantineBehavior | MetadataByzantineBehavior"
    ) -> None:
        """Arm a corruption policy on this node (survives fail/recover)."""
        self.byzantine = behavior

    def clear_byzantine(self) -> None:
        """Disarm: the node answers honestly again."""
        self.byzantine = None

    # ------------------------------------------------------------------ #
    # data-record RPCs
    # ------------------------------------------------------------------ #

    def put_data(self, key, payload: np.ndarray, version: int) -> None:
        """Store/overwrite a data record (used for initial load & repair)."""
        self._check_alive()
        self.stats.writes += 1
        self._data[key] = DataRecord(np.array(payload, copy=True), int(version))

    def write_data(self, key, payload: np.ndarray, version: int) -> None:
        """Versioned write: rejects non-monotonic versions (Alg. 1 data path)."""
        self._check_alive()
        rec = self._data.get(key)
        if rec is not None and int(version) <= rec.version:
            self.stats.stale_rejections += 1
            raise StaleNodeError(
                f"node {self.node_id}: write version {version} <= stored {rec.version}"
            )
        self.stats.writes += 1
        self._data[key] = DataRecord(np.array(payload, copy=True), int(version))

    def read_data(self, key) -> tuple[np.ndarray, int]:
        """Return (payload copy, version); KeyError if never stored."""
        self._check_alive()
        self.stats.reads += 1
        rec = self._data[key]
        return rec.payload.copy(), rec.version

    def data_version(self, key) -> int:
        """The stored version of a data record, -1 if absent.

        -1 mirrors Algorithm 2's ``version <- -1`` initialization: an absent
        record is older than any written version (versions start at 0).
        """
        self._check_alive()
        self.stats.version_queries += 1
        rec = self._data.get(key)
        return rec.version if rec is not None else -1

    # ------------------------------------------------------------------ #
    # parity-record RPCs
    # ------------------------------------------------------------------ #

    def put_parity(self, key, payload: np.ndarray, versions: np.ndarray) -> None:
        """Store/overwrite a parity record (initial load & repair)."""
        self._check_alive()
        self.stats.writes += 1
        self._parity[key] = ParityRecord(
            np.array(payload, copy=True), np.array(versions, dtype=np.int64, copy=True)
        )

    def apply_delta(
        self, key, contribution: int, delta: np.ndarray, expected_version: int, new_version: int
    ) -> None:
        """Algorithm 1's ``N_j.add``: ``b_j ^= delta`` guarded by V.

        The delta is accepted only when the stored contribution version for
        ``contribution`` equals ``expected_version`` (line 26); on success
        the contribution version advances to ``new_version``.
        """
        self._check_alive()
        rec = self._parity.get(key)
        if rec is None:
            self.stats.stale_rejections += 1
            raise StaleNodeError(f"node {self.node_id}: no parity record for {key!r}")
        if not 0 <= contribution < rec.versions.shape[0]:
            raise ConfigurationError(
                f"contribution index {contribution} out of range"
            )
        if int(new_version) <= int(expected_version):
            raise ConfigurationError("new_version must exceed expected_version")
        if rec.versions[contribution] != int(expected_version):
            self.stats.stale_rejections += 1
            raise StaleNodeError(
                f"node {self.node_id}: contribution {contribution} at version "
                f"{int(rec.versions[contribution])}, expected {expected_version}"
            )
        delta = np.asarray(delta)
        if delta.shape != rec.payload.shape:
            raise ConfigurationError(
                f"delta shape {delta.shape} != parity shape {rec.payload.shape}"
            )
        self.stats.deltas += 1
        np.bitwise_xor(rec.payload, delta.astype(rec.payload.dtype), out=rec.payload)
        rec.versions[contribution] = int(new_version)

    def read_parity(self, key) -> tuple[np.ndarray, np.ndarray]:
        """Return (payload copy, version-vector copy); KeyError if absent."""
        self._check_alive()
        self.stats.reads += 1
        rec = self._parity[key]
        return rec.payload.copy(), rec.versions.copy()

    def parity_versions(self, key) -> np.ndarray | None:
        """The stored version vector V[:, j-k] (copy), or None if absent.

        This is the ``u.version(id)`` RPC of Algorithms 1-2 for parity
        nodes: the reader receives the whole column.
        """
        self._check_alive()
        self.stats.version_queries += 1
        rec = self._parity.get(key)
        return rec.versions.copy() if rec is not None else None

    # ------------------------------------------------------------------ #
    # introspection (not RPCs: test/repair tooling)
    # ------------------------------------------------------------------ #

    def keys(self) -> set:
        """All stored keys (works even when failed: disk inspection)."""
        return set(self._data) | set(self._parity)

    def has_key(self, key) -> bool:
        return key in self._data or key in self._parity
