"""Fail-stop storage nodes with versioned block stores.

A :class:`StorageNode` models one storage server of the paper's system:

* it holds *data records* (payload + integer version) and *parity records*
  (payload + per-contribution version vector, the column V[:, j-k] of
  Algorithm 1), keyed by arbitrary hashable keys;
* it is fail-stop (assumption 3 of section IV): when failed, every RPC
  raises :class:`NodeUnavailableError`; it never returns wrong data;
* parity delta application enforces the Algorithm-1 line-26 guard: the
  delta for contribution i at expected version v is accepted only if the
  stored contribution version equals v (otherwise the node is *stale* for
  that contribution and the write counts as failed on it);
* data writes enforce version monotonicity (a replayed or out-of-date
  write is rejected), which keeps last-writer-wins semantics under
  concurrent coordinators.

Nodes also keep per-operation counters so experiments can account for IO.

Service time
------------

On the instant execution path a node answers an RPC in zero time. The
event-driven runtime can instead attach a FIFO *service queue* to every
node (:class:`~repro.runtime.event.NodeServiceQueue`): each delivered
request then occupies the node for a sampled service time before its
reply is produced, so concurrent coordinators genuinely contend for the
node. The :class:`ServiceTimeModel` hierarchy here is the configurable
distribution of that per-request service time; :class:`QueueStats`
accumulates what the queue measured (waits, service, backlog).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NodeUnavailableError, StaleNodeError

__all__ = [
    "DataRecord",
    "ParityRecord",
    "NodeStats",
    "StorageNode",
    "ServiceTimeModel",
    "FixedServiceTime",
    "ExponentialServiceTime",
    "QueueStats",
]


class ServiceTimeModel:
    """Base per-request service-time model (virtual seconds)."""

    def sample(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class FixedServiceTime(ServiceTimeModel):
    """Deterministic service time: the M/D/1-style server."""

    time: float = 0.0005

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"service time must be >= 0, got {self.time}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.time


@dataclass(frozen=True)
class ExponentialServiceTime(ServiceTimeModel):
    """Memoryless service time with the given mean: the M/M/1 server."""

    mean: float = 0.0005

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"service mean must be > 0, got {self.mean}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))


@dataclass
class QueueStats:
    """What one node's FIFO service queue measured.

    ``total_wait`` sums the queueing delay (arrival to service start) of
    every started request, ``total_service`` the sampled service times
    (equals the server's busy time), ``max_queue_len`` the worst backlog
    including the request in service.
    """

    arrivals: int = 0
    started: int = 0
    served: int = 0
    total_wait: float = 0.0
    total_service: float = 0.0
    max_queue_len: int = 0

    @property
    def mean_wait(self) -> float:
        """Mean queueing delay per started request (0.0 when idle)."""
        return self.total_wait / self.started if self.started else 0.0

    @property
    def mean_service(self) -> float:
        return self.total_service / self.started if self.started else 0.0

    def utilization(self, duration: float) -> float:
        """Busy fraction of the server over ``duration`` virtual seconds."""
        return self.total_service / duration if duration > 0 else 0.0


@dataclass
class DataRecord:
    """A data block replica: payload plus scalar version."""

    payload: np.ndarray
    version: int


@dataclass
class ParityRecord:
    """A parity block: payload plus contribution-version vector V[:, j-k]."""

    payload: np.ndarray
    versions: np.ndarray  # shape (k,), int64


@dataclass
class NodeStats:
    """IO accounting for one node."""

    reads: int = 0
    writes: int = 0
    deltas: int = 0
    version_queries: int = 0
    stale_rejections: int = 0
    failed_rpcs: int = 0

    def total_ops(self) -> int:
        return self.reads + self.writes + self.deltas + self.version_queries


class StorageNode:
    """One fail-stop storage server."""

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.alive = True
        self._data: dict[object, DataRecord] = {}
        self._parity: dict[object, ParityRecord] = {}
        self.stats = NodeStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.alive else "DOWN"
        return f"StorageNode(id={self.node_id}, {state}, keys={len(self._data) + len(self._parity)})"

    # ------------------------------------------------------------------ #
    # failure model
    # ------------------------------------------------------------------ #

    def fail(self) -> None:
        """Fail-stop: the node stops answering but keeps its disk content."""
        self.alive = False

    def recover(self, wipe: bool = False) -> None:
        """Bring the node back. ``wipe=True`` models a disk replacement
        (all records lost, needs repair); ``wipe=False`` models a reboot
        (records intact but possibly stale)."""
        if wipe:
            self._data.clear()
            self._parity.clear()
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            self.stats.failed_rpcs += 1
            raise NodeUnavailableError(self.node_id)

    # ------------------------------------------------------------------ #
    # data-record RPCs
    # ------------------------------------------------------------------ #

    def put_data(self, key, payload: np.ndarray, version: int) -> None:
        """Store/overwrite a data record (used for initial load & repair)."""
        self._check_alive()
        self.stats.writes += 1
        self._data[key] = DataRecord(np.array(payload, copy=True), int(version))

    def write_data(self, key, payload: np.ndarray, version: int) -> None:
        """Versioned write: rejects non-monotonic versions (Alg. 1 data path)."""
        self._check_alive()
        rec = self._data.get(key)
        if rec is not None and int(version) <= rec.version:
            self.stats.stale_rejections += 1
            raise StaleNodeError(
                f"node {self.node_id}: write version {version} <= stored {rec.version}"
            )
        self.stats.writes += 1
        self._data[key] = DataRecord(np.array(payload, copy=True), int(version))

    def read_data(self, key) -> tuple[np.ndarray, int]:
        """Return (payload copy, version); KeyError if never stored."""
        self._check_alive()
        self.stats.reads += 1
        rec = self._data[key]
        return rec.payload.copy(), rec.version

    def data_version(self, key) -> int:
        """The stored version of a data record, -1 if absent.

        -1 mirrors Algorithm 2's ``version <- -1`` initialization: an absent
        record is older than any written version (versions start at 0).
        """
        self._check_alive()
        self.stats.version_queries += 1
        rec = self._data.get(key)
        return rec.version if rec is not None else -1

    # ------------------------------------------------------------------ #
    # parity-record RPCs
    # ------------------------------------------------------------------ #

    def put_parity(self, key, payload: np.ndarray, versions: np.ndarray) -> None:
        """Store/overwrite a parity record (initial load & repair)."""
        self._check_alive()
        self.stats.writes += 1
        self._parity[key] = ParityRecord(
            np.array(payload, copy=True), np.array(versions, dtype=np.int64, copy=True)
        )

    def apply_delta(
        self, key, contribution: int, delta: np.ndarray, expected_version: int, new_version: int
    ) -> None:
        """Algorithm 1's ``N_j.add``: ``b_j ^= delta`` guarded by V.

        The delta is accepted only when the stored contribution version for
        ``contribution`` equals ``expected_version`` (line 26); on success
        the contribution version advances to ``new_version``.
        """
        self._check_alive()
        rec = self._parity.get(key)
        if rec is None:
            self.stats.stale_rejections += 1
            raise StaleNodeError(f"node {self.node_id}: no parity record for {key!r}")
        if not 0 <= contribution < rec.versions.shape[0]:
            raise ConfigurationError(
                f"contribution index {contribution} out of range"
            )
        if int(new_version) <= int(expected_version):
            raise ConfigurationError("new_version must exceed expected_version")
        if rec.versions[contribution] != int(expected_version):
            self.stats.stale_rejections += 1
            raise StaleNodeError(
                f"node {self.node_id}: contribution {contribution} at version "
                f"{int(rec.versions[contribution])}, expected {expected_version}"
            )
        delta = np.asarray(delta)
        if delta.shape != rec.payload.shape:
            raise ConfigurationError(
                f"delta shape {delta.shape} != parity shape {rec.payload.shape}"
            )
        self.stats.deltas += 1
        np.bitwise_xor(rec.payload, delta.astype(rec.payload.dtype), out=rec.payload)
        rec.versions[contribution] = int(new_version)

    def read_parity(self, key) -> tuple[np.ndarray, np.ndarray]:
        """Return (payload copy, version-vector copy); KeyError if absent."""
        self._check_alive()
        self.stats.reads += 1
        rec = self._parity[key]
        return rec.payload.copy(), rec.versions.copy()

    def parity_versions(self, key) -> np.ndarray | None:
        """The stored version vector V[:, j-k] (copy), or None if absent.

        This is the ``u.version(id)`` RPC of Algorithms 1-2 for parity
        nodes: the reader receives the whole column.
        """
        self._check_alive()
        self.stats.version_queries += 1
        rec = self._parity.get(key)
        return rec.versions.copy() if rec is not None else None

    # ------------------------------------------------------------------ #
    # introspection (not RPCs: test/repair tooling)
    # ------------------------------------------------------------------ #

    def keys(self) -> set:
        """All stored keys (works even when failed: disk inspection)."""
        return set(self._data) | set(self._parity)

    def has_key(self, key) -> bool:
        return key in self._data or key in self._parity
