"""Minimal discrete-event simulation engine.

A binary-heap event queue with stable FIFO ordering for simultaneous
events. Drives the history-model experiments: failure/repair transitions
from a :class:`~repro.cluster.failures.FailureTrace` and workload
operation arrivals are both scheduled here.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self.processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._queue, (float(time), self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        callback()
        self.processed += 1
        return True

    def run_until(self, horizon: float) -> None:
        """Process events with time <= horizon, then advance to horizon."""
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue (bounded by ``max_events`` if given)."""
        count = 0
        while self._queue:
            if max_events is not None and count >= max_events:
                return
            self.step()
            count += 1
