"""Minimal discrete-event simulation engine.

A binary-heap event queue with stable FIFO ordering for simultaneous
events. Drives the history-model experiments (failure/repair transitions
from a :class:`~repro.cluster.failures.FailureTrace`, workload operation
arrivals) and the event-driven protocol runtime in :mod:`repro.runtime`,
whose message timeouts need the cancellable :class:`Timer` handles that
``schedule_at``/``schedule_in`` return.

Three mechanisms keep the engine fast at million-event scale:

* **Heap compaction** — cancellation is lazy (a cancelled entry stays
  queued until it surfaces), but the engine counts housed-dead entries
  and rebuilds the heap once more than half of it is cancelled timers,
  so churn-heavy runs (every resolved message cancels its timeout) keep
  the heap proportional to *live* events instead of total ever armed.
* **Monotone lanes** (:meth:`Simulator.monotone_lane`) — a deque-backed
  side channel for callers whose deadlines are scheduled in
  non-decreasing order (constant-delay timeout timers). Push and cancel
  are O(1) with no heap traffic; the main loop merges lane heads with
  the heap by the same ``(time, seq)`` key, so ordering is exactly as
  if every entry had gone through the heap.
* **Batch drain** (:meth:`Simulator.register_batch_handler` /
  :meth:`Simulator.schedule_batch`) — events that share one timestamp
  and one registered vectorized handler are popped as a group and
  handed over in a single call, instead of one Python callback per
  event. Grouping only spans *globally consecutive* events: a foreign
  event (heap or lane) ordered between two batch entries breaks the
  group, so handlers observe the same interleaving a per-event loop
  would.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Timer", "Simulator", "MonotoneLane"]

#: compaction triggers only past this many dead entries (tiny queues are
#: cheaper to prune lazily than to rebuild)
_COMPACT_MIN = 64


class Timer:
    """Cancellable handle for one scheduled event.

    Cancellation is lazy: the entry stays in its container (heap or
    lane) and is discarded when it surfaces, so ``cancel()`` is O(1) and
    safe to call from any callback (including after the event already
    ran, where it is a no-op). While housed, a cancelled timer is
    counted by its container so compaction can trigger once dead
    entries dominate.
    """

    __slots__ = ("time", "cancelled", "_home")

    def __init__(self, time: float, home=None) -> None:
        self.time = time
        self.cancelled = False
        self._home = home

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            home = self._home
            if home is not None:
                home._dead += 1


class MonotoneLane:
    """Deque-backed event lane for monotonically non-decreasing deadlines.

    Made by :meth:`Simulator.monotone_lane`. ``schedule_call`` appends in
    O(1) but requires each deadline to be >= the lane's current tail —
    the natural shape of constant-delay timeout timers, where deadline
    ``now + T`` only grows as the simulation advances. Entries carry
    global sequence numbers, and the simulator merges lane heads with
    the heap by ``(time, seq)``, so lane events fire in exactly the
    order they would have from the heap.
    """

    __slots__ = ("_sim", "_entries", "_dead")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._entries: deque = deque()
        self._dead = 0

    def __len__(self) -> int:
        return len(self._entries) - self._dead

    def schedule_call(self, time: float, callback, *args) -> Timer:
        """Schedule ``callback(*args)`` at absolute time ``time`` (>= tail)."""
        sim = self._sim
        entries = self._entries
        if time < sim._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {sim._now}"
            )
        if entries and time < entries[-1][0]:
            raise SimulationError(
                f"monotone lane requires non-decreasing deadlines: "
                f"{time} < tail {entries[-1][0]}"
            )
        timer = Timer(time, self)
        entries.append((time, sim._seq, callback, args, timer))
        sim._seq += 1
        if self._dead > _COMPACT_MIN and self._dead * 2 > len(entries):
            self._compact()
        return timer

    def _compact(self) -> None:
        self._entries = deque(
            entry for entry in self._entries if not entry[4].cancelled
        )
        self._dead = 0

    def _prune(self) -> None:
        entries = self._entries
        while entries and entries[0][4].cancelled:
            entry = entries.popleft()
            entry[4]._home = None
            self._dead -= 1


class Simulator:
    """Discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: heap entries: (time, seq, callback-or-handler-id, args, timer)
        self._queue: list[tuple] = []
        self._dead = 0
        self._lanes: list[MonotoneLane] = []
        self._lane_cache: dict = {}
        self._handlers: list[Callable[[list], None]] = []
        self.processed = 0
        #: high-water mark of raw heap entries (live + not-yet-pruned
        #: cancelled) — the compaction regression tests bound this
        self.peak_queue_depth = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Raw heap entries currently housed, including cancelled ones."""
        return len(self._queue)

    def __len__(self) -> int:
        """Pending (non-cancelled) events still queued."""
        return (
            len(self._queue)
            - self._dead
            + sum(len(lane) for lane in self._lanes)
        )

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule_call(self, time: float, callback, *args) -> Timer:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        timer = Timer(time, self)
        queue = self._queue
        heapq.heappush(queue, (time, self._seq, callback, args, timer))
        self._seq += 1
        depth = len(queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        if self._dead > _COMPACT_MIN and self._dead * 2 > depth:
            self._compact()
        return timer

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule_call(float(time), callback)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_call(self._now + delay, callback)

    def monotone_lane(self, key=None) -> MonotoneLane:
        """A :class:`MonotoneLane` merged into this simulator's loop.

        With a ``key``, callers sharing the key share one lane — e.g.
        every shard coordinator arming constant-``timeout`` timers uses
        ``("timeout", T)``, keeping the per-step lane scan O(distinct
        timeouts) instead of O(coordinators). Sharing is only sound when
        all users push non-decreasing deadlines, which a shared ``now``
        plus a constant delay guarantees.
        """
        if key is not None:
            lane = self._lane_cache.get(key)
            if lane is not None:
                return lane
        lane = MonotoneLane(self)
        self._lanes.append(lane)
        if key is not None:
            self._lane_cache[key] = lane
        return lane

    def register_batch_handler(self, handler: Callable[[list], None]) -> int:
        """Register a vectorized handler; returns its id for ``schedule_batch``."""
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def schedule_batch(self, time: float, handler_id: int, payload: Any) -> Timer:
        """Schedule ``payload`` for the batch handler ``handler_id``.

        Consecutive pending events sharing ``(time, handler_id)`` are
        drained as one ``handler(payloads)`` call; an unrelated event
        ordered between them splits the group.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        timer = Timer(time, self)
        queue = self._queue
        heapq.heappush(queue, (time, self._seq, handler_id, payload, timer))
        self._seq += 1
        depth = len(queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        if self._dead > _COMPACT_MIN and self._dead * 2 > depth:
            self._compact()
        return timer

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        self._queue = [
            entry for entry in self._queue if not entry[4].cancelled
        ]
        heapq.heapify(self._queue)
        self._dead = 0

    def _prune(self) -> None:
        """Drop cancelled entries sitting at the head of the heap."""
        queue = self._queue
        while queue and queue[0][4].cancelled:
            entry = heapq.heappop(queue)
            entry[4]._home = None
            self._dead -= 1

    def _next_source(self):
        """Prune dead heads; return the container holding the next event.

        ``self`` means the heap, a :class:`MonotoneLane` means that lane,
        ``None`` means nothing is pending anywhere.
        """
        self._prune()
        queue = self._queue
        best = self if queue else None
        best_key = (queue[0][0], queue[0][1]) if queue else None
        for lane in self._lanes:
            lane._prune()
            entries = lane._entries
            if entries:
                key = (entries[0][0], entries[0][1])
                if best_key is None or key < best_key:
                    best = lane
                    best_key = key
        return best

    def _lane_head_before(self, time: float, seq: int) -> bool:
        """Is any live lane entry ordered before ``(time, seq)``?"""
        for lane in self._lanes:
            lane._prune()
            entries = lane._entries
            if entries and (entries[0][0], entries[0][1]) < (time, seq):
                return True
        return False

    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        source = self._next_source()
        if source is None:
            return False
        if source is self:
            entry = heapq.heappop(self._queue)
        else:
            entry = source._entries.popleft()
        time, _seq, callback, args, timer = entry
        timer._home = None
        self._now = time
        self.processed += 1
        if type(callback) is int:
            # Batch entry: drain the run of same-(time, handler) events
            # that are globally next, then dispatch once.
            payloads = [args]
            queue = self._queue
            while True:
                self._prune()
                if not queue:
                    break
                head = queue[0]
                if (
                    head[0] != time
                    or type(head[2]) is not int
                    or head[2] != callback
                    or self._lane_head_before(time, head[1])
                ):
                    break
                grouped = heapq.heappop(queue)
                grouped[4]._home = None
                payloads.append(grouped[3])
                self.processed += 1
            self._handlers[callback](payloads)
        elif args:
            callback(*args)
        else:
            callback()
        return True

    def run_until(self, horizon: float) -> None:
        """Process events with time <= horizon, then advance to horizon."""
        while True:
            source = self._next_source()
            if source is None:
                break
            head = (
                self._queue[0] if source is self else source._entries[0]
            )
            if head[0] > horizon:
                break
            self.step()
        self._now = max(self._now, horizon)

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue (bounded by ``max_events`` if given)."""
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            if not self.step():
                return
            count += 1
