"""Minimal discrete-event simulation engine.

A binary-heap event queue with stable FIFO ordering for simultaneous
events. Drives the history-model experiments (failure/repair transitions
from a :class:`~repro.cluster.failures.FailureTrace`, workload operation
arrivals) and the event-driven protocol runtime in :mod:`repro.runtime`,
whose message timeouts need the cancellable :class:`Timer` handles that
``schedule_at``/``schedule_in`` return.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Timer", "Simulator"]


class Timer:
    """Cancellable handle for one scheduled event.

    Cancellation is lazy: the entry stays in the heap and is discarded
    when it surfaces, so ``cancel()`` is O(1) and safe to call from any
    callback (including after the event already ran, where it is a no-op).
    """

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Discrete-event loop with virtual time."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[tuple[float, int, Callable[[], None], Timer]] = []
        self.processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def __len__(self) -> int:
        """Pending (non-cancelled) events still queued."""
        self._prune()
        return sum(1 for entry in self._queue if not entry[3].cancelled)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        timer = Timer(float(time))
        heapq.heappush(self._queue, (float(time), self._seq, callback, timer))
        self._seq += 1
        return timer

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def _prune(self) -> None:
        """Drop cancelled entries sitting at the head of the heap."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        self._prune()
        if not self._queue:
            return False
        time, _, callback, _timer = heapq.heappop(self._queue)
        self._now = time
        callback()
        self.processed += 1
        return True

    def run_until(self, horizon: float) -> None:
        """Process events with time <= horizon, then advance to horizon."""
        while True:
            self._prune()
            if not self._queue or self._queue[0][0] > horizon:
                break
            self.step()
        self._now = max(self._now, horizon)

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue (bounded by ``max_events`` if given)."""
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            if not self.step():
                return
            count += 1
