"""Failure models: snapshot sampling and failure/repair traces.

Two regimes, matching the two evaluation modes in DESIGN.md:

* :class:`BernoulliSnapshot` — the paper's section-IV model: each node is
  independently available with probability p at the instant an operation
  runs. Used by the Monte-Carlo availability estimators.
* :class:`FailureTrace` / :func:`exponential_trace` — a timeline of
  fail/repair events (exponential MTBF/MTTR), driven through the
  discrete-event engine for the history-model experiments where nodes miss
  writes while down and come back stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError

__all__ = [
    "BernoulliSnapshot",
    "EventKind",
    "FailureEvent",
    "FailureTrace",
    "exponential_trace",
]


class BernoulliSnapshot:
    """I.i.d. per-node availability snapshots (the paper's model)."""

    def __init__(self, p: float, num_nodes: int) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.p = float(p)
        self.num_nodes = int(num_nodes)

    def sample(self, rng) -> np.ndarray:
        """One boolean alive-vector of length num_nodes."""
        return make_rng(rng).random(self.num_nodes) < self.p

    def sample_many(self, trials: int, rng) -> np.ndarray:
        """(trials, num_nodes) boolean matrix — the vectorized MC hot path."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        return make_rng(rng).random((trials, self.num_nodes)) < self.p


class EventKind(str, Enum):
    FAIL = "fail"
    REPAIR = "repair"


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One node state transition at an absolute virtual time."""

    time: float
    node_id: int
    kind: EventKind


class FailureTrace:
    """A sorted timeline of fail/repair events with queries.

    The trace is the ground truth for history-model simulations: the
    driver applies each event to the cluster as virtual time advances.
    """

    def __init__(self, num_nodes: int, events) -> None:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.events: list[FailureEvent] = sorted(events)
        for ev in self.events:
            if not 0 <= ev.node_id < self.num_nodes:
                raise ConfigurationError(
                    f"event references node {ev.node_id} outside [0, {num_nodes})"
                )
            if ev.time < 0:
                raise ConfigurationError("event times must be >= 0")

    def __len__(self) -> int:
        return len(self.events)

    def alive_at(self, node_id: int, t: float) -> bool:
        """Node state at time t (nodes start alive)."""
        alive = True
        for ev in self.events:
            if ev.time > t:
                break
            if ev.node_id == node_id:
                alive = ev.kind == EventKind.REPAIR
        return alive

    def alive_vector(self, t: float) -> np.ndarray:
        """Boolean alive-vector at time t."""
        alive = np.ones(self.num_nodes, dtype=bool)
        for ev in self.events:
            if ev.time > t:
                break
            alive[ev.node_id] = ev.kind == EventKind.REPAIR
        return alive

    def availability_of(self, node_id: int, horizon: float) -> float:
        """Fraction of [0, horizon] the node spends up (for calibration)."""
        up_since = 0.0
        up_total = 0.0
        alive = True
        for ev in self.events:
            if ev.node_id != node_id or ev.time > horizon:
                continue
            if alive and ev.kind == EventKind.FAIL:
                up_total += ev.time - up_since
                alive = False
            elif not alive and ev.kind == EventKind.REPAIR:
                up_since = ev.time
                alive = True
        if alive:
            up_total += horizon - up_since
        return up_total / horizon if horizon > 0 else 1.0


def exponential_trace(
    num_nodes: int,
    mtbf: float,
    mttr: float,
    horizon: float,
    rng=None,
) -> FailureTrace:
    """Alternating-renewal failure trace: Exp(mtbf) up, Exp(mttr) down.

    The long-run per-node availability is mtbf / (mtbf + mttr), which lets
    experiments pick (mtbf, mttr) to hit a target p and compare trace-driven
    results against the snapshot model.
    """
    if mtbf <= 0 or mttr <= 0:
        raise ConfigurationError("mtbf and mttr must be positive")
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    rng = make_rng(rng)
    events: list[FailureEvent] = []
    for node in range(num_nodes):
        t = float(rng.exponential(mtbf))
        up = True
        while t < horizon:
            events.append(
                FailureEvent(t, node, EventKind.FAIL if up else EventKind.REPAIR)
            )
            t += float(rng.exponential(mttr if up else mtbf))
            up = not up
    return FailureTrace(num_nodes, events)
