"""Message-level network model with accounting, latency and partitions.

Every synchronous protocol RPC goes through :meth:`Network.rpc`, which

* refuses delivery when the destination is failed or partitioned away
  (raising :class:`NodeUnavailableError`, exactly what a timed-out RPC
  looks like to the coordinator),
* counts messages and payload bytes per RPC kind (the paper's motivation
  discusses network overhead of ERC schemes; the counters let benchmarks
  report it),
* accumulates virtual latency from a pluggable latency model.

Latency accounting distinguishes two counters:

* ``total_message_delay`` sums the sampled delay of *every* message —
  useful as a traffic-volume proxy, but **not** an operation latency: a
  quorum fan-out contacts its nodes in parallel, so summing the legs
  overstates the wall time by the fan-out factor (the deprecated
  ``virtual_latency`` alias for it has been removed);
* ``operation_latency`` accumulates the **max-of-parallel** delay per
  fan-out round, recorded by the round coordinators in
  :mod:`repro.runtime` via :meth:`Network.record_round` — this is the
  virtual wall time a client actually observes.

The model here is synchronous-RPC: calls complete immediately in
wall-clock terms, with latency tracked virtually. The event-driven
session layer in :mod:`repro.runtime.event` builds on the same fabric
(``sample_delay`` / ``is_partitioned`` / the drop-and-timeout counters)
to schedule real message deliveries on the discrete-event engine in
:mod:`repro.cluster.events`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import StorageNode
from repro.errors import ConfigurationError, NodeUnavailableError

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LognormalLatency",
    "TwoTierLatency",
    "NetworkStats",
    "Network",
]


class LatencyModel:
    """Base latency model: per-message delay in virtual seconds.

    ``sample`` is the single-distribution interface every model provides.
    ``sample_link`` adds per-link awareness: the event runtime calls it
    with the endpoints of each message leg (``None`` marks an off-cluster
    endpoint, e.g. an external client), and the default implementation
    delegates to ``sample`` so existing models behave identically and
    consume the same RNG draws. Topology-aware models like
    :class:`TwoTierLatency` override it.
    """

    def sample(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise NotImplementedError

    def sample_link(
        self,
        rng: np.random.Generator,
        src: int | None,
        dst: int | None,
    ) -> float:
        """Delay of one message leg from ``src`` to ``dst``."""
        return self.sample(rng)

    def sample_links(
        self,
        rng: np.random.Generator,
        site: int | None,
        peers,
    ) -> list[float]:
        """Delays of one message leg between ``site`` and each peer.

        The batched twin of :meth:`sample_link`, used by the vectorized
        event core to draw a whole fan-out wave at once. The contract is
        **stream identity**: the returned list must equal ``len(peers)``
        sequential ``sample_link`` calls on the same generator (numpy's
        sized draws satisfy this for the uniform/lognormal families).
        Links are treated as direction-symmetric — every built-in model
        is (rack membership does not depend on leg direction) — so the
        same method serves request legs (coordinator -> peer) and reply
        legs (peer -> coordinator). Asymmetric custom models must
        override it.
        """
        return [self.sample_link(rng, site, peer) for peer in peers]


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant per-message latency."""

    delay: float = 0.001

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay

    def sample_links(
        self,
        rng: np.random.Generator,
        site: int | None,
        peers,
    ) -> list[float]:
        return [self.delay] * len(peers)


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in [low, high]."""

    low: float = 0.0005
    high: float = 0.002

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_links(
        self,
        rng: np.random.Generator,
        site: int | None,
        peers,
    ) -> list[float]:
        # Sized draws are bit-identical to sequential scalar draws for
        # the uniform family, so traces are unchanged.
        return rng.uniform(self.low, self.high, len(peers)).tolist()


@dataclass(frozen=True)
class LognormalLatency(LatencyModel):
    """Heavy-tailed latency: exp(N(mu, sigma^2)) seconds per message.

    The defaults give a ~1.5 ms median with a long tail — the regime
    where quorum-wait (q-th fastest of a fan-out) visibly beats waiting
    on stragglers, which is what the latency percentile scenarios probe.
    """

    mu: float = -6.5
    sigma: float = 0.5

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_links(
        self,
        rng: np.random.Generator,
        site: int | None,
        peers,
    ) -> list[float]:
        # Sized draws are bit-identical to sequential scalar draws for
        # the lognormal family, so traces are unchanged.
        return rng.lognormal(self.mu, self.sigma, len(peers)).tolist()


@dataclass(frozen=True)
class TwoTierLatency(LatencyModel):
    """Rack/WAN two-tier per-link latency.

    Nodes are grouped into racks of ``rack_size`` consecutive ids
    (``rack = node_id // rack_size``, matching the contiguous blocks of
    :class:`~repro.cluster.racks.RackTopology`). A message leg between
    two endpoints in the same rack takes ``local`` seconds, everything
    else takes ``remote`` seconds; ``jitter`` (a fraction in [0, 1))
    widens either base delay uniformly to ``base * (1 ± jitter)``. An
    endpoint of ``None`` — or any negative id — models an off-cluster
    client and is always remote.

    The single-distribution ``sample`` fallback (used by the instant
    path's :meth:`Network.rpc`, which has no per-link information)
    reports the remote tier: the conservative cross-rack figure.
    """

    local: float = 0.0005
    remote: float = 0.005
    rack_size: int = 3
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.local <= self.remote:
            raise ConfigurationError(
                f"need 0 <= local <= remote, got local={self.local}, "
                f"remote={self.remote}"
            )
        if self.rack_size < 1:
            raise ConfigurationError(
                f"rack_size must be >= 1, got {self.rack_size}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def rack_of(self, endpoint: int | None) -> int:
        """The rack of an endpoint id; -1 for off-cluster endpoints."""
        if endpoint is None or endpoint < 0:
            return -1
        return int(endpoint) // self.rack_size

    def sample(self, rng: np.random.Generator) -> float:
        return self._jittered(self.remote, rng)

    def sample_link(
        self,
        rng: np.random.Generator,
        src: int | None,
        dst: int | None,
    ) -> float:
        src_rack = self.rack_of(src)
        dst_rack = self.rack_of(dst)
        same = src_rack == dst_rack and src_rack >= 0
        return self._jittered(self.local if same else self.remote, rng)

    def _jittered(self, base: float, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return base
        return base * (1.0 + float(rng.uniform(-self.jitter, self.jitter)))

    def sample_links(
        self,
        rng: np.random.Generator,
        site: int | None,
        peers,
    ) -> list[float]:
        site_rack = self.rack_of(site)
        local, remote = self.local, self.remote
        bases = [
            local
            if site_rack >= 0 and self.rack_of(peer) == site_rack
            else remote
            for peer in peers
        ]
        if self.jitter == 0.0:
            return bases
        factors = rng.uniform(-self.jitter, self.jitter, len(peers)).tolist()
        return [base * (1.0 + f) for base, f in zip(bases, factors)]


@dataclass
class NetworkStats:
    """Aggregate traffic counters.

    ``messages``/``bytes_sent``/``by_kind`` count traffic on both
    execution paths. ``total_message_delay`` vs ``operation_latency`` is
    the sum-of-messages vs max-of-parallel distinction documented in the
    module docstring. ``messages_dropped``/``timeouts``/``retries`` are
    event-path counters (partitions drop messages silently; the session
    layer converts silence into timeouts and optional resends).
    """

    messages: int = 0
    bytes_sent: int = 0
    rpc_failures: int = 0
    total_message_delay: float = 0.0
    operation_latency: float = 0.0
    rounds: int = 0
    messages_dropped: int = 0
    timeouts: int = 0
    retries: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.rpc_failures = 0
        self.total_message_delay = 0.0
        self.operation_latency = 0.0
        self.rounds = 0
        self.messages_dropped = 0
        self.timeouts = 0
        self.retries = 0
        self.by_kind.clear()


def _payload_bytes(args, kwargs) -> int:
    total = 0
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


class Network:
    """RPC fabric between a coordinator and the storage nodes."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.latency = latency
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = NetworkStats()
        self.last_rpc_delay = 0.0
        self._partitioned: set[int] = set()

    # -- partitions ----------------------------------------------------- #

    def partition(self, node_ids) -> None:
        """Cut the given nodes off from the coordinator."""
        self._partitioned.update(int(i) for i in node_ids)

    def heal(self, node_ids=None) -> None:
        """Reconnect nodes (all of them when ``node_ids`` is None)."""
        if node_ids is None:
            self._partitioned.clear()
        else:
            self._partitioned.difference_update(int(i) for i in node_ids)

    def is_partitioned(self, node_id: int) -> bool:
        """True when messages to/from ``node_id`` are silently dropped."""
        return int(node_id) in self._partitioned

    def is_reachable(self, node: StorageNode) -> bool:
        return node.alive and node.node_id not in self._partitioned

    # -- latency -------------------------------------------------------- #

    def sample_delay(self, rng: np.random.Generator | None = None) -> float:
        """One message-leg delay from the latency model (0.0 when unset)."""
        if self.latency is None:
            return 0.0
        return self.latency.sample(rng if rng is not None else self.rng)

    def record_round(self, elapsed: float) -> None:
        """Account one fan-out round's max-of-parallel latency."""
        self.stats.operation_latency += elapsed
        self.stats.rounds += 1

    # -- RPC ------------------------------------------------------------ #

    def rpc(self, node: StorageNode, method: str, *args, **kwargs):
        """Invoke ``node.method(*args, **kwargs)`` across the fabric.

        Counts one request/response pair; raises NodeUnavailableError when
        the destination is dead or partitioned (indistinguishable to the
        caller, as in a real timeout). The sampled round-trip delay is
        kept in ``last_rpc_delay`` so round coordinators can record the
        max-of-parallel round latency.
        """
        self.stats.messages += 2  # request + response
        self.stats.by_kind[method] += 1
        self.stats.bytes_sent += _payload_bytes(args, kwargs)
        if self.latency is not None:
            delay = 2 * self.latency.sample(self.rng)
            self.stats.total_message_delay += delay
            self.last_rpc_delay = delay
        else:
            self.last_rpc_delay = 0.0
        if node.node_id in self._partitioned:
            self.stats.rpc_failures += 1
            raise NodeUnavailableError(node.node_id)
        try:
            value = getattr(node, method)(*args, **kwargs)
        except NodeUnavailableError:
            self.stats.rpc_failures += 1
            raise
        # Instant-path twin of the event runtime's delivery-time corruption
        # hook: a Byzantine node lies on the reply leg, after the RPC
        # itself succeeded, so both coordinators observe the same fault.
        if node.byzantine is not None:
            value = node.byzantine.apply(node, method, value, args)
        return value
