"""Message-level network model with accounting, latency and partitions.

Every protocol RPC goes through :meth:`Network.rpc`, which

* refuses delivery when the destination is failed or partitioned away
  (raising :class:`NodeUnavailableError`, exactly what a timed-out RPC
  looks like to the coordinator),
* counts messages and payload bytes per RPC kind (the paper's motivation
  discusses network overhead of ERC schemes; the counters let benchmarks
  report it),
* accumulates virtual latency from a pluggable latency model.

The model is synchronous-RPC: calls complete immediately in wall-clock
terms, with latency tracked virtually. The discrete-event engine in
:mod:`repro.cluster.events` drives time-based failure schedules on top.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import StorageNode
from repro.errors import NodeUnavailableError

__all__ = ["LatencyModel", "FixedLatency", "UniformLatency", "NetworkStats", "Network"]


class LatencyModel:
    """Base latency model: per-message delay in virtual seconds."""

    def sample(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant per-message latency."""

    delay: float = 0.001

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in [low, high]."""

    low: float = 0.0005
    high: float = 0.002

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


@dataclass
class NetworkStats:
    """Aggregate traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    rpc_failures: int = 0
    virtual_latency: float = 0.0
    by_kind: Counter = field(default_factory=Counter)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.rpc_failures = 0
        self.virtual_latency = 0.0
        self.by_kind.clear()


def _payload_bytes(args, kwargs) -> int:
    total = 0
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


class Network:
    """RPC fabric between a coordinator and the storage nodes."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.latency = latency
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = NetworkStats()
        self._partitioned: set[int] = set()

    # -- partitions ----------------------------------------------------- #

    def partition(self, node_ids) -> None:
        """Cut the given nodes off from the coordinator."""
        self._partitioned.update(int(i) for i in node_ids)

    def heal(self, node_ids=None) -> None:
        """Reconnect nodes (all of them when ``node_ids`` is None)."""
        if node_ids is None:
            self._partitioned.clear()
        else:
            self._partitioned.difference_update(int(i) for i in node_ids)

    def is_reachable(self, node: StorageNode) -> bool:
        return node.alive and node.node_id not in self._partitioned

    # -- RPC ------------------------------------------------------------ #

    def rpc(self, node: StorageNode, method: str, *args, **kwargs):
        """Invoke ``node.method(*args, **kwargs)`` across the fabric.

        Counts one request/response pair; raises NodeUnavailableError when
        the destination is dead or partitioned (indistinguishable to the
        caller, as in a real timeout).
        """
        self.stats.messages += 2  # request + response
        self.stats.by_kind[method] += 1
        self.stats.bytes_sent += _payload_bytes(args, kwargs)
        if self.latency is not None:
            self.stats.virtual_latency += 2 * self.latency.sample(self.rng)
        if node.node_id in self._partitioned:
            self.stats.rpc_failures += 1
            raise NodeUnavailableError(node.node_id)
        try:
            return getattr(node, method)(*args, **kwargs)
        except NodeUnavailableError:
            self.stats.rpc_failures += 1
            raise
