"""Failure domains (racks): correlated failures beyond the paper's model.

The paper's section-IV assumption 2 — "nodes fail independently of each
other" — is violated in real clusters: a rack's switch or PDU takes all
its nodes down together. This module models that with a two-level
process: each rack is down with probability q (all members down), and
each node additionally fails independently with probability p_node, so
the marginal per-node availability is

    p = (1 - q) * (1 - p_node).

The sampler plugs into the Monte-Carlo estimators, letting experiments
quantify how much the paper's independence assumption overstates
availability at equal marginal p (see bench_rack_correlation).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.rng import make_rng
from repro.errors import ConfigurationError

__all__ = ["RackTopology", "rack_aware_assignment"]


class RackTopology:
    """Nodes partitioned into racks with correlated rack failures."""

    def __init__(self, racks: list[list[int]]) -> None:
        if not racks or any(not rack for rack in racks):
            raise ConfigurationError("racks must be non-empty lists of node ids")
        flat = [node for rack in racks for node in rack]
        if len(set(flat)) != len(flat):
            raise ConfigurationError("a node may belong to only one rack")
        if sorted(flat) != list(range(len(flat))):
            raise ConfigurationError("racks must cover node ids 0..N-1 exactly")
        self.racks = [list(map(int, rack)) for rack in racks]
        self.num_nodes = len(flat)
        self._rack_of = np.empty(self.num_nodes, dtype=np.int64)
        for r, rack in enumerate(self.racks):
            for node in rack:
                self._rack_of[node] = r

    @classmethod
    def uniform(cls, num_nodes: int, racks: int) -> "RackTopology":
        """Round-robin assignment of ``num_nodes`` nodes to ``racks``."""
        if racks < 1 or num_nodes < racks:
            raise ConfigurationError(
                f"need 1 <= racks <= num_nodes, got racks={racks}, nodes={num_nodes}"
            )
        groups: list[list[int]] = [[] for _ in range(racks)]
        for node in range(num_nodes):
            groups[node % racks].append(node)
        return cls(groups)

    def rack_of(self, node: int) -> int:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(f"node {node} out of range")
        return int(self._rack_of[node])

    # ------------------------------------------------------------------ #

    def marginal_p(self, rack_q: float, node_q: float) -> float:
        """Per-node availability under (rack_q, node_q)."""
        self._check_probs(rack_q, node_q)
        return (1.0 - rack_q) * (1.0 - node_q)

    def node_failure_for_marginal(self, rack_q: float, p: float) -> float:
        """node_q achieving marginal availability ``p`` given ``rack_q``."""
        self._check_probs(rack_q, 0.0)
        if not 0.0 <= p <= 1.0 - rack_q:
            raise ConfigurationError(
                f"marginal p={p} unreachable with rack_q={rack_q}"
            )
        return 1.0 - p / (1.0 - rack_q)

    @staticmethod
    def _check_probs(rack_q: float, node_q: float) -> None:
        if not 0.0 <= rack_q < 1.0:
            raise ConfigurationError(f"rack_q must be in [0, 1), got {rack_q}")
        if not 0.0 <= node_q <= 1.0:
            raise ConfigurationError(f"node_q must be in [0, 1], got {node_q}")

    def sample_alive(
        self, trials: int, rack_q: float, node_q: float, rng=None
    ) -> np.ndarray:
        """(trials, num_nodes) correlated alive matrix."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        self._check_probs(rack_q, node_q)
        rng = make_rng(rng)
        rack_up = rng.random((trials, len(self.racks))) >= rack_q
        node_up = rng.random((trials, self.num_nodes)) >= node_q
        return rack_up[:, self._rack_of] & node_up


def rack_aware_assignment(topology: RackTopology, n: int) -> list[int]:
    """Pick n nodes spreading consecutive blocks across racks.

    Round-robins over racks so a single rack failure hits as few blocks
    of one stripe as possible — the placement a rack-aware deployment
    would use.
    """
    if n < 1 or n > topology.num_nodes:
        raise ConfigurationError(
            f"need 1 <= n <= {topology.num_nodes}, got {n}"
        )
    order: list[int] = []
    offsets = [0] * len(topology.racks)
    rack_idx = 0
    while len(order) < n:
        rack = topology.racks[rack_idx % len(topology.racks)]
        off = offsets[rack_idx % len(topology.racks)]
        if off < len(rack):
            order.append(rack[off])
            offsets[rack_idx % len(topology.racks)] += 1
        rack_idx += 1
        if rack_idx > 10 * len(topology.racks) * topology.num_nodes:  # pragma: no cover
            raise ConfigurationError("assignment failed to converge")
    return order
