"""Simulated distributed-storage substrate (DESIGN.md S5).

Fail-stop versioned storage nodes, an RPC fabric with traffic accounting,
failure models (snapshot and trace-driven), and a discrete-event engine —
the "distributed storage system" the paper's protocol runs on.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulator, Timer
from repro.cluster.failures import (
    BernoulliSnapshot,
    EventKind,
    FailureEvent,
    FailureTrace,
    exponential_trace,
)
from repro.cluster.network import (
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    Network,
    NetworkStats,
    TwoTierLatency,
    UniformLatency,
)
from repro.cluster.node import (
    DataRecord,
    ExponentialServiceTime,
    FixedServiceTime,
    NodeStats,
    ParityRecord,
    QueueStats,
    ServiceTimeModel,
    StorageNode,
)
from repro.cluster.racks import RackTopology, rack_aware_assignment
from repro.cluster.rng import make_rng, spawn_rngs

__all__ = [
    "Cluster",
    "Simulator",
    "Timer",
    "BernoulliSnapshot",
    "EventKind",
    "FailureEvent",
    "FailureTrace",
    "exponential_trace",
    "Network",
    "NetworkStats",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LognormalLatency",
    "TwoTierLatency",
    "StorageNode",
    "DataRecord",
    "ParityRecord",
    "NodeStats",
    "ServiceTimeModel",
    "FixedServiceTime",
    "ExponentialServiceTime",
    "QueueStats",
    "make_rng",
    "spawn_rngs",
    "RackTopology",
    "rack_aware_assignment",
]
