"""Importable worker entry points for the spec-driven runner's fan-out.

Every unit the :class:`~repro.api.runner.ScenarioRunner` parallelizes
crosses the process boundary as its lossless ``SystemSpec`` dict plus
the unit's position in the task grid — never a pickled live coordinator
or cluster. The worker rebuilds a fresh runner from the spec and
re-derives the unit's child streams positionally from ``spec.seed``
(``SeedSequence.spawn`` keys children by index), so a unit computes the
same bytes inline, in any worker, in any order.

These functions must stay module-level: the spawn-context pool pickles
them by reference and the child resolves them by import.
"""

from __future__ import annotations

__all__ = [
    "saturation_point_task",
    "protocol_mc_chunk_task",
    "comparison_protocol_task",
]


def _runner(spec_dict: dict):
    # Imported lazily — and fully: runner.py imports this module for
    # dispatch, and in a spawn worker THIS module is the first repro
    # import, so even repro.api.spec would re-enter the cycle here.
    from repro.api.runner import ScenarioRunner
    from repro.api.spec import SystemSpec

    return ScenarioRunner(SystemSpec.from_dict(spec_dict))


def saturation_point_task(payload: dict) -> dict:
    """One client-count point of the saturation curve."""
    return _runner(payload["spec"]).saturation_point(
        payload["index"], payload["clients"], payload["num_points"]
    )


def protocol_mc_chunk_task(payload: dict) -> list:
    """One (op, chunk) slice of the protocol-MC trial budget.

    Returns ``[successes, trials]`` — MCEstimate fields, summed by the
    parent in chunk order.
    """
    return _runner(payload["spec"]).protocol_mc_chunk(
        payload["op"],
        payload["index"],
        payload["num_chunks"],
        payload["chunk_trials"],
    )


def comparison_protocol_task(payload: dict) -> dict:
    """One protocol's full comparison sub-run (own cluster and engine)."""
    return _runner(payload["spec"]).comparison_single(payload["name"])
