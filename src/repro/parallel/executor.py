"""Deterministic process-pool fan-out for independent simulation units.

:class:`ParallelExecutor` is the one execution primitive every study
layer shares (saturation sweeps, MC columns, ``protocol_mc`` trial
chunks, optimizer shape families, comparison sub-runs, bench sections).
The contract that keeps parallel runs byte-identical to serial ones:

* **jobs = 0 or 1 is the serial path.** :meth:`ParallelExecutor.map`
  calls the task function inline, in order, with zero behavioral
  difference — no pool, no pickling, exceptions propagate raw.
* **Streams are assigned by task index, never by worker.** Callers
  pre-assign every unit its :func:`~repro.cluster.rng.spawn_rngs` child
  stream (or the index it re-derives one from) *before* dispatch, so a
  unit computes the same numbers whichever worker runs it, whenever.
* **Results come back in task order.** ``map`` returns ``[fn(p) for p
  in payloads]`` regardless of completion order, so assembly code never
  sees scheduling.
* **Workers start from the spawn context.** No forked state leaks in;
  the initializer re-inserts the library's import root (plus any caller
  ``sys_paths``) so the spawned interpreter resolves ``repro`` exactly
  like the parent — ``PYTHONPATH=src`` runs included.

Failure surfacing is explicit: a task exception is marshalled back as
text (type name, message, worker traceback) and re-raised as
:class:`~repro.errors.ParallelExecutionError`; a worker that dies
without answering (signal, ``os._exit``) raises
:class:`~repro.errors.WorkerCrashError`. Either way the pool is torn
down — partial results are never returned.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    WorkerCrashError,
)

__all__ = ["ParallelExecutor", "resolve_jobs"]


def resolve_jobs(jobs) -> int:
    """Coerce a CLI-ish ``jobs`` value to a worker count.

    ``None`` -> 0 (serial), ``-1`` or ``"auto"`` -> ``os.cpu_count()``,
    a non-negative int passes through. Anything else is a
    :class:`ConfigurationError`.
    """
    if jobs is None:
        return 0
    if jobs == "auto":
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ConfigurationError(
            f"jobs must be an int >= 0, -1 or 'auto', got {jobs!r}"
        )
    if jobs == -1:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(
            f"jobs must be an int >= 0, -1 or 'auto', got {jobs!r}"
        )
    return jobs


def _worker_init(sys_paths) -> None:
    """Pool initializer: make ``repro`` importable in the spawned child.

    Runs before the worker unpickles its first task, so task functions
    living under the same roots resolve even when the parent was started
    with ``PYTHONPATH=src`` (spawned children do inherit ``os.environ``,
    but an installed-elsewhere interpreter or a pytest-managed path set
    may not reproduce the parent's ``sys.path`` otherwise).
    """
    for path in reversed(list(sys_paths)):
        if path and path not in sys.path:
            sys.path.insert(0, path)


def _run_chunk(fn, payloads):
    """Worker-side chunk loop: ``("ok", value)`` / ``("error", ...)`` markers.

    Exceptions are flattened to strings because protocol exceptions carry
    constructor arguments that do not survive naive unpickling; the first
    error aborts the rest of the chunk (the parent discards everything
    anyway — partial results are never emitted).
    """
    out = []
    for payload in payloads:
        try:
            out.append(("ok", fn(payload)))
        except BaseException as exc:  # marshalled to the parent, re-raised there
            out.append(
                ("error", type(exc).__name__, str(exc), traceback.format_exc())
            )
            break
    return out


class ParallelExecutor:
    """Ordered, chunked ``map`` over a spawn-context process pool.

    Parameters
    ----------
    jobs:
        Worker count. ``0``/``1`` (and ``None``) select the inline
        serial path; ``-1``/``"auto"`` means one worker per CPU.
    chunk_size:
        Tasks per pool submission (default: ~4 waves per worker, so
        uneven task costs still balance). Ignored on the serial path.
    sys_paths:
        Extra directories prepended to each worker's ``sys.path``
        (the library's own import root is always included). Needed when
        task functions live outside the installed package — e.g. a test
        helper module.

    The pool is created lazily on the first parallel :meth:`map` and
    reused across calls; :meth:`close` (or the context manager) tears it
    down. Any failure inside ``map`` force-closes the pool so no orphan
    workers outlive the error.
    """

    def __init__(self, jobs=0, *, chunk_size: int | None = None,
                 sys_paths=()) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.chunk_size = chunk_size
        self._sys_paths = tuple(sys_paths)
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #

    @property
    def parallel(self) -> bool:
        """True when ``map`` will actually fan out to worker processes."""
        return self.jobs >= 2

    def map(self, fn, payloads) -> list:
        """``[fn(p) for p in payloads]``, fanned across workers.

        ``fn`` must be an importable module-level function and each
        payload picklable; results are assembled in task order. With
        ``jobs <= 1`` (or fewer than two payloads) everything runs
        inline in the calling process — the byte-identity baseline.
        """
        payloads = list(payloads)
        if not self.parallel or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        pool = self._ensure_pool()
        try:
            futures = [
                pool.submit(_run_chunk, fn, chunk)
                for chunk in self._chunks(payloads)
            ]
            results: list = []
            for future in futures:
                for item in future.result():
                    if item[0] == "ok":
                        results.append(item[1])
                    else:
                        _, exc_type, message, worker_tb = item
                        raise ParallelExecutionError(
                            len(results), exc_type, message, worker_tb
                        )
            return results
        except ParallelExecutionError:
            self.close(force=True)
            raise
        except BrokenProcessPool as exc:
            self.close(force=True)
            raise WorkerCrashError(str(exc) or "process pool broken") from exc
        except BaseException:
            # KeyboardInterrupt and friends: kill the fleet, leave no
            # orphans, surface the original exception untouched.
            self.close(force=True)
            raise

    def close(self, force: bool = False) -> None:
        """Shut the pool down (idempotent).

        ``force=True`` terminates live workers first — the error/interrupt
        path, where waiting for in-flight tasks could block forever.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if force:
            processes = getattr(pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except (AttributeError, OSError):
                    pass
        pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(force=exc_info[0] is not None)

    # ------------------------------------------------------------------ #

    def _chunks(self, payloads: list) -> list[list]:
        size = self.chunk_size or max(
            1, math.ceil(len(payloads) / (self.jobs * 4))
        )
        return [
            payloads[i : i + size] for i in range(0, len(payloads), size)
        ]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import repro

            pkg_root = os.path.dirname(
                os.path.dirname(os.path.abspath(repro.__file__))
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
                initargs=((pkg_root,) + self._sys_paths,),
            )
        return self._pool
