"""Deterministic multi-core fan-out (see docs/PERFORMANCE.md).

:class:`ParallelExecutor` fans independent simulation units across a
spawn-context process pool without changing a single output byte:
``jobs=0/1`` runs the identical task functions inline, streams are
pre-assigned by task index, and results assemble in task order.
:mod:`repro.parallel.tasks` holds the importable worker entry points
the :class:`~repro.api.runner.ScenarioRunner` dispatches.
"""

from repro.parallel.executor import ParallelExecutor, resolve_jobs

__all__ = ["ParallelExecutor", "resolve_jobs"]
